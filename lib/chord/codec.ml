module L = Wire.Layout
module Io = Wire.Io

let ( let* ) = Io.( let* )

type msg = Protocol.msg

(* --- building blocks --- *)

let put_peer buf (p : Protocol.peer) =
  Buffer.add_string buf (Id.to_raw_string p.id);
  Io.put_u64 buf (Int64.of_int p.addr)

let read_peer r : (Protocol.peer, string) result =
  let* raw = Io.take r Id.byte_length "peer id" in
  let* addr = Io.u64 r "peer addr" in
  Ok { Protocol.id = Id.of_raw_string raw; addr = Int64.to_int addr }

let put_peer_opt buf = function
  | None -> Io.put_u8 buf 0
  | Some p ->
      Io.put_u8 buf 1;
      put_peer buf p

let read_peer_opt r =
  let* tag = Io.u8 r "peer option" in
  match tag with
  | 0 -> Ok None
  | 1 ->
      let* p = read_peer r in
      Ok (Some p)
  | _ -> Error "bad peer option tag"

let put_peers buf ps =
  if List.length ps > L.max_peer_list then
    invalid_arg "Chord.Codec: peer list too long";
  Io.put_u8 buf (List.length ps);
  List.iter (put_peer buf) ps

let read_peers r what =
  let* count = Io.u8 r what in
  Io.list_of r ~count ~max:L.max_peer_list what read_peer

(* --- messages --- *)

let kind_of : msg -> int = function
  | Lookup_step _ -> L.kind_lookup_step
  | Lookup_reply _ -> L.kind_lookup_reply
  | Get_state _ -> L.kind_get_state
  | State _ -> L.kind_state
  | Notify _ -> L.kind_notify

let encode (m : msg) =
  let buf = Buffer.create 64 in
  Buffer.add_char buf L.magic0;
  Buffer.add_char buf L.magic1;
  Buffer.add_char buf L.version;
  Io.put_u8 buf (kind_of m);
  (match m with
  | Lookup_step { key; token; reply_to } ->
      Buffer.add_string buf (Id.to_raw_string key);
      Io.put_u64 buf (Int64.of_int token);
      Io.put_u64 buf (Int64.of_int reply_to)
  | Lookup_reply { token; result } ->
      Io.put_u64 buf (Int64.of_int token);
      (match result with
      | Done p ->
          Io.put_u8 buf 0;
          put_peer buf p
      | Next p ->
          Io.put_u8 buf 1;
          put_peer buf p)
  | Get_state { token; reply_to } ->
      Io.put_u64 buf (Int64.of_int token);
      Io.put_u64 buf (Int64.of_int reply_to)
  | State { token; self; pred; succs } ->
      Io.put_u64 buf (Int64.of_int token);
      put_peer buf self;
      put_peer_opt buf pred;
      put_peers buf succs
  | Notify { who; chain } ->
      put_peer buf who;
      put_peers buf chain);
  Buffer.contents buf

let read_body kind r : (msg, string) result =
  if kind = L.kind_lookup_step then
    let* raw = Io.take r Id.byte_length "lookup key" in
    let* token = Io.u64 r "token" in
    let* reply_to = Io.u64 r "reply_to" in
    Ok
      (Protocol.Lookup_step
         {
           key = Id.of_raw_string raw;
           token = Int64.to_int token;
           reply_to = Int64.to_int reply_to;
         })
  else if kind = L.kind_lookup_reply then
    let* token = Io.u64 r "token" in
    let* tag = Io.u8 r "step result tag" in
    let* result =
      match tag with
      | 0 ->
          let* p = read_peer r in
          Ok (Protocol.Done p)
      | 1 ->
          let* p = read_peer r in
          Ok (Protocol.Next p)
      | _ -> Error "bad step result tag"
    in
    Ok (Protocol.Lookup_reply { token = Int64.to_int token; result })
  else if kind = L.kind_get_state then
    let* token = Io.u64 r "token" in
    let* reply_to = Io.u64 r "reply_to" in
    Ok
      (Protocol.Get_state
         { token = Int64.to_int token; reply_to = Int64.to_int reply_to })
  else if kind = L.kind_state then
    let* token = Io.u64 r "token" in
    let* self = read_peer r in
    let* pred = read_peer_opt r in
    let* succs = read_peers r "successor list" in
    Ok (Protocol.State { token = Int64.to_int token; self; pred; succs })
  else if kind = L.kind_notify then
    let* who = read_peer r in
    let* chain = read_peers r "notify chain" in
    Ok (Protocol.Notify { who; chain })
  else Error "unknown chord message kind"

let decode s =
  let r = Io.reader s in
  let* () = Io.need r L.preamble_bytes "preamble" in
  let* () = Io.expect_char r L.magic0 "magic" in
  let* () = Io.expect_char r L.magic1 "magic" in
  let* () = Io.expect_char r L.version "version" in
  let* kind = Io.u8 r "kind" in
  let* m = read_body kind r in
  let* () = Io.expect_end r in
  Ok m

(* --- simnet interposition --- *)

let harden ?(metrics = Obs.Metrics.default) net =
  let labels = [ ("instance", Net.label net); ("proto", "chord") ] in
  let roundtrips = Obs.Metrics.counter metrics ~labels "wire.roundtrips" in
  let errors = Obs.Metrics.counter metrics ~labels "wire.decode_errors" in
  Net.set_transducer net (fun m ->
      match decode (encode m) with
      | Ok m' ->
          Obs.Metrics.incr roundtrips;
          Ok m'
      | Error e ->
          Obs.Metrics.incr errors;
          Error e)
