lib/chord/finger_table.ml: Array Format Id List Ring Set
