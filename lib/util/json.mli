(** Minimal hand-rolled JSON tree and emitter — no external dependencies.

    Only what the observability layer needs: build a value, render it
    compactly (RFC 8259-valid output), write it to a file.  There is no
    parser; machine consumers of [BENCH_i3.json] live outside this
    repository. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
      (** non-finite floats are emitted as [null] (JSON has no NaN/inf) *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-escape the contents (no surrounding quotes): backslash,
    quote and control characters; everything else is passed through, so
    UTF-8 survives byte-for-byte. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val to_file : path:string -> t -> unit
(** Write the compact rendering plus a trailing newline. *)

val lines_to_file : path:string -> t list -> unit
(** JSON-lines: one compact value per line. *)
