lib/i3/trigger_table.mli: Id Trigger
