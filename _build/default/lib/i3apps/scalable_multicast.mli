(** Large-scale multicast with bounded-degree trigger hierarchies
    (Sec. III-D, Fig. 5).

    Plain multicast stores every member's trigger under one identifier, so
    one server replicates every packet group-size times.  For large groups,
    members are re-attached through a tree of id-to-id triggers in which no
    identifier carries more than [degree] triggers; the substitution is
    invisible to senders, which still publish to the root id. *)

type plan = {
  root : Id.t;
  internal_edges : (Id.t * Id.t) list;
      (** (parent id, child id) triggers forming the interior of the tree *)
  attachment : Id.t array;
      (** attachment.(i): the identifier member [i] hangs its own trigger
          on (the root itself for tiny groups) *)
  degree : int;
}

val plan : Rng.t -> root:Id.t -> members:int -> degree:int -> plan
(** Compute a balanced bounded-degree tree. @raise Invalid_argument if
    [degree < 2] or [members < 0]. *)

val fanout_histogram : plan -> (Id.t * int) list
(** Triggers per identifier implied by the plan (internal edges plus leaf
    attachments) — every count is <= [degree]. *)

val deploy :
  coordinator:I3.Host.t -> members:I3.Host.t array -> plan -> unit
(** Insert the tree: the coordinator owns the internal id-to-id triggers
    (it refreshes them like any soft state), each member inserts its own
    leaf trigger. *)

val send : I3.Host.t -> plan -> string -> unit
(** Publish to the root — identical to unicast, as always. *)
