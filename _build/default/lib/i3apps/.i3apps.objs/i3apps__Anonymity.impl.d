lib/i3apps/anonymity.ml: I3 Id List
