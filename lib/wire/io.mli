(** Bounds-checked binary primitives shared by all wire codecs.

    Writers append big-endian values to a [Buffer.t].  Readers are
    [result]-typed cursors that never raise and never read past the end
    of the input; every accessor takes a [what] label naming the field
    for the [Error] message.  Integers are big-endian; floats travel as
    their IEEE-754 bit patterns. *)

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result

(** {1 Writing} *)

val put_u8 : Buffer.t -> int -> unit
val put_u16 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_u64 : Buffer.t -> int64 -> unit
val put_f64 : Buffer.t -> float -> unit

val put_str16 : Buffer.t -> string -> unit
(** u16 length prefix + bytes. @raise Invalid_argument beyond 65535. *)

val put_str32 : Buffer.t -> string -> unit
(** u32 length prefix + bytes.
    @raise Invalid_argument beyond {!Layout.max_data_payload} — nothing
    legal exceeds one datagram, so a longer string is an encoder bug. *)

(** {1 Reading} *)

type reader

val reader : string -> reader

type view
(** A borrowed slice of a reader's backing buffer — the zero-copy
    alternative to {!take}.  Valid as long as the backing string (which
    is immutable) is alive; materialize with {!view_to_string} or write
    it out with {!add_view}. *)

val view_of_string : string -> view
val view_length : view -> int

val view_to_string : view -> string
(** Copy the slice out (no copy if the view spans its whole backing
    string). *)

val add_view : Buffer.t -> view -> unit
(** Append the viewed bytes to a buffer without an intermediate
    string. *)

val pos : reader -> int
(** Bytes consumed so far. *)

val remaining : reader -> int

val need : reader -> int -> string -> (unit, string) result
(** [need r n what] checks [n] more bytes are available without
    consuming them. *)

val u8 : reader -> string -> (int, string) result
val u16 : reader -> string -> (int, string) result
val u32 : reader -> string -> (int, string) result
val u64 : reader -> string -> (int64, string) result
val f64 : reader -> string -> (float, string) result

val take : reader -> int -> string -> (string, string) result
(** [take r n what] consumes exactly [n] raw bytes. *)

val take_view : reader -> int -> string -> (view, string) result
(** Like {!take}, but returns a borrowed slice instead of copying. *)

val sub_reader : reader -> int -> string -> (reader, string) result
(** [sub_reader r n what] consumes [n] bytes and returns a cursor
    bounded to exactly those bytes (sharing the backing buffer), for
    decoding embedded length-prefixed blobs without materializing
    them.  {!expect_end} on the sub-reader checks the blob was fully
    consumed. *)

val str16 : reader -> string -> (string, string) result
val str32 : reader -> string -> (string, string) result

val expect_char : reader -> char -> string -> (unit, string) result
val expect_end : reader -> (unit, string) result

val list_of :
  reader ->
  count:int ->
  max:int ->
  string ->
  (reader -> ('a, string) result) ->
  ('a list, string) result
(** Read [count] elements with [f], rejecting [count < 0] or
    [count > max]. *)
