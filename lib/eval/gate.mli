(** Perf-regression gate: diff a fresh [BENCH_i3.json] against a
    checked-in baseline with per-metric tolerances.

    Each {!check} names a dotted JSON path (resolved with {!Json.path})
    and a direction: [Lower_better] fails when the current value exceeds
    [baseline * (1 + rel_tol) + abs_tol]-style slack, [Higher_better]
    when it falls below it, [Exact] when it strays beyond the slack in
    either direction.  Missing-from-current is a failure (the bench
    silently lost a metric); missing-from-baseline passes with a
    re-baseline nudge (a new metric cannot regress).

    {!default_checks} gates only metrics that are deterministic given
    the bench seeds and the virtual clock — never wall-clock rates,
    which vary by machine. *)

type direction = Higher_better | Lower_better | Exact

type check = {
  key : string;  (** dotted path into the bench JSON, e.g. ["delivery.ratio"] *)
  direction : direction;
  rel_tol : float;  (** fraction of |baseline| allowed as drift *)
  abs_tol : float;  (** absolute drift allowed on top *)
}

val check :
  ?rel_tol:float -> ?abs_tol:float -> direction:direction -> string -> check
(** Tolerances default to 0 (exact match required).
    @raise Invalid_argument on negative tolerances. *)

type result = {
  check : check;
  baseline : float option;
  current : float option;
  ok : bool;
  note : string;  (** human-readable verdict, e.g. ["REGRESSION: ..."] *)
}

val compare_json : baseline:Json.t -> current:Json.t -> check list -> result list

type relation = { lesser : string; greater : string }
(** A cross-key invariant judged within one file: the value at [lesser]
    must be strictly below the value at [greater]. *)

val relation : lesser:string -> greater:string -> relation
(** @raise Invalid_argument when the two keys are equal. *)

val check_relations : current:Json.t -> relation list -> result list
(** Judge relations against the current bench run alone (no baseline
    needed: the invariant must hold in every run).  Results render with
    the synthetic key ["lesser < greater"], the lesser value in
    [current] and the greater in [baseline].  A missing key fails. *)

val mode_mismatch : baseline:Json.t -> current:Json.t -> (string * string) option
(** The two files' top-level ["mode"] fields when they differ — comparing
    a smoke run against a full baseline is meaningless and should fail
    before any per-metric check. *)

val passed : result list -> bool

val render : ?out:out_channel -> result list -> unit
(** One line per check: ok/FAIL, key, both values, note; then a summary
    line. *)

val default_checks : check list
(** Deterministic metrics only: delivery ratio, routing-hop percentiles,
    orphan count, span-latency percentiles, health verdict counts, and
    the substrate bakeoff's hop/state pins. *)

val default_relations : relation list
(** Koorde's O(1)-state claim: both bakeoff degrees hold strictly less
    routing state per node than classic Chord. *)
