examples/chord_demo.mli:
