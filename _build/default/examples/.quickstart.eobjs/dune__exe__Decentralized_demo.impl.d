examples/decentralized_demo.ml: Format I3 Id List Printf Rng
