lib/i3apps/service_composition.ml: I3 Id List
