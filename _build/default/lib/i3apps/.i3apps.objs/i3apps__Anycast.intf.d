lib/i3apps/anycast.mli: I3 Id Rng
