(* Live telemetry acceptance: a 3-daemon cluster is scraped over the
   wire while a traced packet crosses it, and the drained trace rings
   assemble into one cross-process hop tree.

   The packet is forced through all three daemons with a service chain
   (paper Sec. 4: service composition): the client's probe carries
   [Sid a]; daemon owning [a] holds a trigger rewriting to [Sid b];
   daemon owning [b] holds the host trigger.  Identifiers are picked so
   the gateway (daemon 0) owns neither — it relays — and [a]/[b] live
   on daemons 1 and 2.  Every hop records into that daemon's trace ring
   under the trace id stamped by the client (packet bytes 28-35); the
   [Harness.Telemetry] collector drains the rings via Stats_request
   frames and [Obs.Trace.assemble] joins them on the id.

   Asserted:
   - the collector gets Stats_responses (wire scraping works end to end);
   - scraped series carry per-target tags (fleet-wide registry view);
   - at least one assembled tree spans >= 3 distinct daemon sites, all
     of them real daemon ports, every event sharing the one trace id the
     client stamped.

   Sandboxes without loopback sockets or fork/exec skip rather than
   fail, exactly like the other live-process tests. *)

let skip reason =
  Printf.printf "SKIP scrape: %s\n%!" reason;
  exit 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "FAIL scrape: %s\n%!" s;
      exit 1)
    fmt

let i3d_path =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name
       (Filename.concat "bin" "i3d.exe"))

let wall_ms () = Unix.gettimeofday () *. 1000.

let () =
  (match Transport.Udp.create () with
  | u -> Transport.Udp.close u
  | exception Unix.Unix_error (e, _, _) ->
      skip ("no loopback UDP: " ^ Unix.error_message e));
  if not (Sys.file_exists i3d_path) then skip ("no daemon at " ^ i3d_path);

  let rng = Rng.of_int 808 in
  let metrics = Obs.Metrics.create () in
  let cluster =
    Harness.Cluster.create ~metrics ~rng:(Rng.split rng) ~i3d:i3d_path ~n:3 ()
  in
  (match Harness.Cluster.start cluster with
  | true -> ()
  | false ->
      Harness.Cluster.stop cluster;
      skip "cluster did not become ready (fork/exec restricted?)"
  | exception Unix.Unix_error (e, _, _) ->
      skip ("cannot fork daemons: " ^ Unix.error_message e));
  if not (Harness.Cluster.await_converged cluster ~timeout_ms:30_000.) then begin
    Harness.Cluster.stop cluster;
    skip "ring did not converge within 30s"
  end;
  let ports =
    List.map
      (fun (m : Harness.Cluster.member) -> m.port)
      (Harness.Cluster.members cluster)
  in
  Printf.printf "scrape: 3 daemons converged, sites %s\n%!"
    (String.concat "," (List.map string_of_int ports));

  (* The service chain: owner(a) = daemon 1, owner(b) = daemon 2, so
     with the gateway at daemon 0 the packet touches all three. *)
  let rec pick_owned_by idx =
    let id = Id.random rng in
    if Harness.Cluster.owner_index cluster id = idx then id
    else pick_owned_by idx
  in
  let id_a = pick_owned_by 1 and id_b = pick_owned_by 2 in

  let udp = Transport.Udp.create () in
  let client =
    Transport.Client.create ~metrics ~rng:(Rng.split rng)
      ~gateways:[ List.hd (Harness.Cluster.addrs cluster) ]
      udp
  in
  let me = Transport.Client.local_addr client in
  let delivered = ref 0 in
  Transport.Client.on_deliver client (fun ~stack:_ ~payload:_ ->
      incr delivered);
  let chain = I3.Trigger.make ~id:id_a ~stack:[ I3.Packet.Sid id_b ] ~owner:me in
  let host = I3.Trigger.to_host ~id:id_b ~owner:me in
  List.iteri
    (fun i tr ->
      match Transport.Client.insert client tr with
      | `Acked -> ()
      | `Gave_up -> fail "trigger insert %d gave up" i)
    [ chain; host ];

  (* The collector: scrape + drain every 200 ms over the wire. *)
  let tel = Harness.Telemetry.of_cluster ~interval_ms:200. cluster in

  (* Send traced probes until a tree spans all three daemons (or we run
     out of budget).  Trace ids are client-chosen; remember them so the
     assembled tree can be pinned to a stamped packet. *)
  let base_trace = 7_000_000 in
  let sent = ref 0 in
  let spanning = ref None in
  let deadline = wall_ms () +. 20_000. in
  let last_send = ref neg_infinity in
  while !spanning = None && wall_ms () < deadline do
    let now = wall_ms () in
    if now -. !last_send >= 150. then begin
      last_send := now;
      incr sent;
      Transport.Client.send_data client
        ~trace:(base_trace + !sent)
        ~stack:[ I3.Packet.Sid id_a ]
        ~payload:(Printf.sprintf "probe %d" !sent)
        ()
    end;
    ignore (Transport.Client.wait client ~timeout:0.01);
    Transport.Client.poll client ~now:(wall_ms ());
    Harness.Telemetry.tick tel ~now_ms:(wall_ms ());
    spanning :=
      List.find_opt
        (fun t -> List.length t.Obs.Trace.a_sites >= 3)
        (Harness.Telemetry.assemble tel)
  done;

  let scr = Harness.Telemetry.scrape tel in
  let responses = Obs.Scrape.responses scr in
  let trees = Harness.Telemetry.assemble tel in
  Printf.printf
    "scrape: %d probes sent, %d delivered, %d/%d scrapes answered, %d trees\n%!"
    !sent !delivered responses (Obs.Scrape.polls scr) (List.length trees);

  (* Scraped series must carry the per-target tag (the fleet-wide view
     a dead process can't fake). *)
  let tagged =
    List.exists
      (fun s -> List.mem_assoc "target" (Obs.Series.labels s))
      (Obs.Series.all (Harness.Telemetry.store tel))
  in

  Harness.Telemetry.close tel;
  Harness.Cluster.stop cluster;
  Transport.Udp.close udp;

  if responses = 0 then fail "no Stats_response ever decoded";
  if not tagged then fail "scraped series missing (target, instance) tags";
  match !spanning with
  | None ->
      fail "no assembled trace spanned 3 daemons (%d trees, widest %d sites)"
        (List.length trees)
        (List.fold_left
           (fun acc t -> max acc (List.length t.Obs.Trace.a_sites))
           0 trees)
  | Some tree ->
      let id = tree.Obs.Trace.a_trace in
      if not (id > base_trace && id <= base_trace + !sent) then
        fail "assembled trace id %d was never stamped by the client" id;
      List.iter
        (fun (e : Obs.Trace.event) ->
          if e.Obs.Trace.trace <> id then
            fail "tree mixes trace ids (%d vs %d)" e.Obs.Trace.trace id)
        tree.Obs.Trace.a_events;
      List.iter
        (fun site ->
          if not (List.mem site ports) then
            fail "site %d is not a daemon port" site)
        tree.Obs.Trace.a_sites;
      Printf.printf
        "scrape: OK — trace %d crossed %d daemons (%s), %d hop events\n%!" id
        (List.length tree.Obs.Trace.a_sites)
        (String.concat ","
           (List.map string_of_int tree.Obs.Trace.a_sites))
        (List.length tree.Obs.Trace.a_events)
