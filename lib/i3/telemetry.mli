(** Attaches an {!Obs.Trace} collector to a network's observer hook: for
    every message carrying a trace id ({!Message.trace_of}), an accepted
    transmission records [Enqueue] and a network-level loss records
    [Drop "net:<cause>"] — the terminal event for packets the fault model
    eats in flight.  No-op when the tracer is disabled.

    The trace id rides in the frame header at [Wire.Layout.off_trace]
    (bytes 28–35), so it survives the wire round-trip every simulated
    hop performs and crosses real UDP unchanged. *)

val install_net_tracer : tracer:Obs.Trace.t -> Message.t Net.t -> unit
