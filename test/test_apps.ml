(* Tests for lib/i3apps: the communication abstractions of paper Secs. II-III
   built on the core API — multicast, scalable multicast, anycast, server
   selection, service composition, heterogeneous multicast, sessions,
   mobility and the legacy proxy. *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Private registry per deployment: parallel test binaries must not
   share Obs.Metrics.default. *)
let deployment ?(seed = 101) ?(n_servers = 16) () =
  I3.Deployment.create ~metrics:(Obs.Metrics.create ()) ~seed ~n_servers ()

let collect host =
  let log = ref [] in
  I3.Host.on_receive host (fun ~stack:_ ~payload -> log := payload :: !log);
  fun () -> List.rev !log

(* --- Multicast --- *)

let test_multicast_fanout () =
  let d = deployment () in
  let members = List.init 5 (fun _ -> I3.Deployment.new_host d ()) in
  let logs = List.map collect members in
  let sender = I3.Deployment.new_host d () in
  let g = I3apps.Multicast.create_group (I3.Deployment.rng d) in
  List.iter (fun m -> I3apps.Multicast.join m g) members;
  I3.Deployment.run_for d 500.;
  Alcotest.(check int) "member count" 5 (I3apps.Multicast.member_count d g);
  I3apps.Multicast.send sender g "blast";
  I3.Deployment.run_for d 500.;
  List.iter
    (fun log -> Alcotest.(check (list string)) "each member got it" [ "blast" ] (log ()))
    logs

let test_multicast_unicast_switch () =
  (* The paper's on-the-fly unicast -> multicast switch: the sender keeps
     using the same identifier while a second party joins. *)
  let d = deployment ~seed:102 () in
  let a = I3.Deployment.new_host d () in
  let b = I3.Deployment.new_host d () in
  let got_a = collect a and got_b = collect b in
  let sender = I3.Deployment.new_host d () in
  let g = I3apps.Multicast.named_group "phone-call-42" in
  I3apps.Multicast.join a g;
  I3.Deployment.run_for d 500.;
  I3apps.Multicast.send sender g "one-party";
  I3.Deployment.run_for d 500.;
  I3apps.Multicast.join b g;
  I3.Deployment.run_for d 500.;
  I3apps.Multicast.send sender g "two-party";
  I3.Deployment.run_for d 500.;
  Alcotest.(check (list string)) "a heard both" [ "one-party"; "two-party" ] (got_a ());
  Alcotest.(check (list string)) "b heard the second" [ "two-party" ] (got_b ())

let test_multicast_leave () =
  let d = deployment ~seed:103 () in
  let m = I3.Deployment.new_host d () in
  let got = collect m in
  let sender = I3.Deployment.new_host d () in
  let g = I3apps.Multicast.create_group (I3.Deployment.rng d) in
  I3apps.Multicast.join m g;
  I3.Deployment.run_for d 500.;
  I3apps.Multicast.leave m g;
  I3.Deployment.run_for d 500.;
  I3apps.Multicast.send sender g "late";
  I3.Deployment.run_for d 500.;
  Alcotest.(check (list string)) "nothing after leave" [] (got ())

(* --- Scalable multicast --- *)

let test_smc_plan_invariants =
  qtest "plan: bounded fanout, all members attached"
    QCheck2.Gen.(pair (int_range 0 200) (int_range 2 8))
    (fun (members, degree) ->
      let rng = Rng.create 55L in
      let root = Id.random rng in
      let p = I3apps.Scalable_multicast.plan rng ~root ~members ~degree in
      let fanouts = I3apps.Scalable_multicast.fanout_histogram p in
      List.for_all (fun (_, n) -> n <= degree) fanouts
      && Array.length p.I3apps.Scalable_multicast.attachment
         = max members (min members 1))

let test_smc_plan_rejects_degree_one () =
  Alcotest.check_raises "degree < 2"
    (Invalid_argument "Scalable_multicast.plan: degree < 2") (fun () ->
      ignore
        (I3apps.Scalable_multicast.plan (Rng.create 1L) ~root:Id.zero
           ~members:5 ~degree:1))

let test_smc_end_to_end () =
  let d = deployment ~seed:104 ~n_servers:32 () in
  let members = Array.init 20 (fun _ -> I3.Deployment.new_host d ()) in
  let logs = Array.map collect members in
  let coordinator = I3.Deployment.new_host d () in
  let sender = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let root = Id.random rng in
  let p = I3apps.Scalable_multicast.plan rng ~root ~members:20 ~degree:3 in
  I3apps.Scalable_multicast.deploy ~coordinator ~members p;
  I3.Deployment.run_for d 1_000.;
  (* the bound holds on the deployed trigger tables too *)
  Array.iter
    (fun s ->
      let per_id = Hashtbl.create 16 in
      I3.Trigger_table.iter (I3.Server.triggers s) (fun tr ~expires:_ ->
          let k = Id.to_raw_string tr.I3.Trigger.id in
          Hashtbl.replace per_id k
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_id k)));
      Hashtbl.iter
        (fun _ n -> Alcotest.(check bool) "fanout <= 3" true (n <= 3))
        per_id)
    (I3.Deployment.servers d);
  I3apps.Scalable_multicast.send sender p "tree";
  I3.Deployment.run_for d 2_000.;
  Array.iter
    (fun log -> Alcotest.(check (list string)) "every member reached" [ "tree" ] (log ()))
    logs

let test_smc_small_group_direct () =
  let rng = Rng.create 66L in
  let root = Id.random rng in
  let p = I3apps.Scalable_multicast.plan rng ~root ~members:3 ~degree:4 in
  Alcotest.(check int) "no internal edges" 0
    (List.length p.I3apps.Scalable_multicast.internal_edges);
  Array.iter
    (fun att -> Alcotest.(check bool) "attached at root" true (Id.equal att root))
    p.I3apps.Scalable_multicast.attachment

(* --- Anycast --- *)

let test_anycast_exactly_one () =
  let d = deployment ~seed:105 () in
  let members = List.init 4 (fun _ -> I3.Deployment.new_host d ()) in
  let logs = List.map collect members in
  let sender = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let g = I3apps.Anycast.create_group rng in
  List.iter (fun m -> ignore (I3apps.Anycast.join m rng ~group:g ())) members;
  I3.Deployment.run_for d 500.;
  for _ = 1 to 10 do
    I3apps.Anycast.send sender rng ~group:g "pick-one"
  done;
  I3.Deployment.run_for d 500.;
  let total = List.fold_left (fun acc log -> acc + List.length (log ())) 0 logs in
  Alcotest.(check int) "each packet delivered exactly once" 10 total

let test_anycast_ids_share_prefix =
  qtest "member ids share the group's k-bit prefix" QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let g = I3apps.Anycast.create_group rng in
      let id = I3apps.Anycast.member_id rng ~group:g ~preference:"xyz" () in
      Id.common_prefix_len g id >= Id.prefix_bits)

let test_anycast_preference_selects () =
  let d = deployment ~seed:106 () in
  let near = I3.Deployment.new_host d () in
  let far = I3.Deployment.new_host d () in
  let got_near = collect near and got_far = collect far in
  let sender = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let g = I3apps.Anycast.create_group rng in
  ignore (I3apps.Anycast.join near rng ~group:g ~preference:"AAAA" ());
  ignore (I3apps.Anycast.join far rng ~group:g ~preference:"ZZZZ" ());
  I3.Deployment.run_for d 500.;
  I3apps.Anycast.send sender rng ~group:g ~preference:"AAAA" "to-near";
  I3.Deployment.run_for d 500.;
  Alcotest.(check (list string)) "preferred member wins" [ "to-near" ] (got_near ());
  Alcotest.(check (list string)) "other silent" [] (got_far ())

(* --- Server selection --- *)

let test_selection_weighted_load () =
  let d = deployment ~seed:107 ~n_servers:8 () in
  let big = I3.Deployment.new_host d () in
  let small = I3.Deployment.new_host d () in
  let got_big = collect big and got_small = collect small in
  let client = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let g = I3apps.Anycast.create_group rng in
  ignore (I3apps.Server_selection.join_weighted big rng ~group:g ~capacity:9);
  ignore (I3apps.Server_selection.join_weighted small rng ~group:g ~capacity:1);
  I3.Deployment.run_for d 500.;
  for _ = 1 to 200 do
    I3apps.Server_selection.request_any client rng ~group:g "req"
  done;
  I3.Deployment.run_for d 2_000.;
  let nb = List.length (got_big ()) and ns = List.length (got_small ()) in
  Alcotest.(check int) "every request served once" 200 (nb + ns);
  Alcotest.(check bool)
    (Printf.sprintf "load follows capacity (big=%d small=%d)" nb ns)
    true
    (nb > 3 * ns)

let test_selection_set_capacity () =
  let d = deployment ~seed:108 ~n_servers:8 () in
  let m = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let g = I3apps.Anycast.create_group rng in
  let member = I3apps.Server_selection.join_weighted m rng ~group:g ~capacity:4 in
  I3.Deployment.run_for d 500.;
  Alcotest.(check int) "four triggers" 4 (I3.Deployment.total_triggers d);
  I3apps.Server_selection.set_capacity member rng ~group:g 1;
  I3.Deployment.run_for d 500.;
  Alcotest.(check int) "shrunk to one" 1 (I3.Deployment.total_triggers d);
  I3apps.Server_selection.set_capacity member rng ~group:g 6;
  I3.Deployment.run_for d 500.;
  Alcotest.(check int) "grown to six" 6 (I3.Deployment.total_triggers d);
  I3apps.Server_selection.leave member;
  I3.Deployment.run_for d 500.;
  Alcotest.(check int) "gone" 0 (I3.Deployment.total_triggers d)

let test_selection_locality () =
  let d = deployment ~seed:109 ~n_servers:8 () in
  let berkeley = I3.Deployment.new_host d () in
  let london = I3.Deployment.new_host d () in
  let got_b = collect berkeley and got_l = collect london in
  let client = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let g = I3apps.Anycast.create_group rng in
  ignore (I3apps.Server_selection.join_near berkeley rng ~group:g ~zip:"94720");
  ignore (I3apps.Server_selection.join_near london rng ~group:g ~zip:"EC1A1");
  I3.Deployment.run_for d 500.;
  I3apps.Server_selection.request_near client rng ~group:g ~zip:"94720" "west";
  I3apps.Server_selection.request_near client rng ~group:g ~zip:"EC1A1" "east";
  I3.Deployment.run_for d 500.;
  Alcotest.(check (list string)) "berkeley serves berkeley" [ "west" ] (got_b ());
  Alcotest.(check (list string)) "london serves london" [ "east" ] (got_l ())

(* --- Service composition --- *)

let test_composition_single_service () =
  let d = deployment ~seed:110 () in
  let transcoder = I3.Deployment.new_host d () in
  let recv = I3.Deployment.new_host d () in
  let sender = I3.Deployment.new_host d () in
  let got = collect recv in
  let rng = I3.Deployment.rng d in
  let svc_id = Id.random rng in
  let svc =
    I3apps.Service_composition.attach transcoder ~service_id:svc_id
      ~transform:String.uppercase_ascii
  in
  let flow = Id.random rng in
  I3.Host.insert_trigger recv flow;
  I3.Deployment.run_for d 500.;
  I3apps.Service_composition.send_via sender ~services:[ svc_id ] ~flow "html";
  I3.Deployment.run_for d 500.;
  Alcotest.(check (list string)) "transcoded" [ "HTML" ] (got ());
  Alcotest.(check int) "service processed one" 1
    (I3apps.Service_composition.processed_count svc)

let test_composition_two_services_in_order () =
  let d = deployment ~seed:111 () in
  let s1 = I3.Deployment.new_host d () in
  let s2 = I3.Deployment.new_host d () in
  let recv = I3.Deployment.new_host d () in
  let sender = I3.Deployment.new_host d () in
  let got = collect recv in
  let rng = I3.Deployment.rng d in
  let id1 = Id.random rng and id2 = Id.random rng and flow = Id.random rng in
  let _ =
    I3apps.Service_composition.attach s1 ~service_id:id1 ~transform:(fun s ->
        s ^ "+first")
  in
  let _ =
    I3apps.Service_composition.attach s2 ~service_id:id2 ~transform:(fun s ->
        s ^ "+second")
  in
  I3.Host.insert_trigger recv flow;
  I3.Deployment.run_for d 500.;
  I3apps.Service_composition.send_via sender ~services:[ id1; id2 ] ~flow "x";
  I3.Deployment.run_for d 1_000.;
  Alcotest.(check (list string)) "order preserved" [ "x+first+second" ] (got ())

let test_composition_stack_limit () =
  let d = deployment ~seed:112 () in
  let sender = I3.Deployment.new_host d () in
  let r = Rng.create 1L in
  let ids = List.init 4 (fun _ -> Id.random r) in
  Alcotest.check_raises "too many services"
    (Invalid_argument "Service_composition.send_via: too many services")
    (fun () ->
      I3apps.Service_composition.send_via sender ~services:ids
        ~flow:(Id.random r) "x")

(* --- Heterogeneous multicast --- *)

let test_heterogeneous_multicast () =
  let d = deployment ~seed:113 ~n_servers:32 () in
  let mpeg_recv = I3.Deployment.new_host d () in
  let h263_recv = I3.Deployment.new_host d () in
  let transcoder = I3.Deployment.new_host d () in
  let sender = I3.Deployment.new_host d () in
  let got_mpeg = collect mpeg_recv and got_h263 = collect h263_recv in
  let rng = I3.Deployment.rng d in
  let group = Id.random rng in
  let svc = Id.random rng in
  let _ =
    I3apps.Service_composition.attach transcoder ~service_id:svc
      ~transform:(fun s -> "h263(" ^ s ^ ")")
  in
  I3apps.Heterogeneous_multicast.subscribe_native mpeg_recv ~group;
  let _p =
    I3apps.Heterogeneous_multicast.subscribe_via h263_recv rng ~group
      ~service:svc
  in
  I3.Deployment.run_for d 500.;
  I3apps.Heterogeneous_multicast.publish sender ~group "mpeg-frame";
  I3.Deployment.run_for d 1_000.;
  Alcotest.(check (list string)) "native gets raw" [ "mpeg-frame" ] (got_mpeg ());
  Alcotest.(check (list string)) "other gets transcoded"
    [ "h263(mpeg-frame)" ]
    (got_h263 ())

(* --- Sessions --- *)

let test_session_handshake_and_duplex () =
  let d = deployment ~seed:114 () in
  let server_host = I3.Deployment.new_host d () in
  let client_host = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let smgr = I3apps.Session.manager server_host (Rng.split rng) in
  let cmgr = I3apps.Session.manager client_host (Rng.split rng) in
  let public = Id.name_hash "www.example.com" in
  let server_log = ref [] in
  I3apps.Session.listen smgr ~public ~on_accept:(fun s ->
      I3apps.Session.on_data s (fun m ->
          server_log := m :: !server_log;
          I3apps.Session.send s ("echo:" ^ m)));
  I3.Deployment.run_for d 500.;
  let client_log = ref [] in
  let session = ref None in
  I3apps.Session.connect cmgr ~public ~on_ready:(fun s ->
      session := Some s;
      I3apps.Session.on_data s (fun m -> client_log := m :: !client_log);
      I3apps.Session.send s "hi");
  I3.Deployment.run_for d 2_000.;
  (match !session with
  | Some s -> Alcotest.(check bool) "established" true (I3apps.Session.is_established s)
  | None -> Alcotest.fail "no session");
  Alcotest.(check (list string)) "server heard" [ "hi" ] !server_log;
  Alcotest.(check (list string)) "client echoed" [ "echo:hi" ] !client_log

let test_session_survives_mobility () =
  let d = deployment ~seed:115 () in
  let server_host = I3.Deployment.new_host d () in
  let client_host = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let smgr = I3apps.Session.manager server_host (Rng.split rng) in
  let cmgr = I3apps.Session.manager client_host (Rng.split rng) in
  let public = Id.name_hash "mobile.example.com" in
  let server_log = ref [] in
  I3apps.Session.listen smgr ~public ~on_accept:(fun s ->
      I3apps.Session.on_data s (fun m -> server_log := m :: !server_log));
  let session = ref None in
  I3apps.Session.connect cmgr ~public ~on_ready:(fun s -> session := Some s);
  I3.Deployment.run_for d 2_000.;
  let s = Option.get !session in
  I3apps.Session.send s "before-move";
  I3.Deployment.run_for d 500.;
  (* both endpoints move simultaneously — the paper's hardest case *)
  I3.Host.move server_host ~new_site:0;
  I3.Host.move client_host ~new_site:0;
  I3.Deployment.run_for d 500.;
  I3apps.Session.send s "after-move";
  I3.Deployment.run_for d 500.;
  Alcotest.(check (list string)) "flow unbroken"
    [ "before-move"; "after-move" ]
    (List.rev !server_log)

let test_session_close_tears_down () =
  let d = deployment ~seed:116 () in
  let a = I3.Deployment.new_host d () in
  let b = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let amgr = I3apps.Session.manager a (Rng.split rng) in
  let bmgr = I3apps.Session.manager b (Rng.split rng) in
  let public = Id.name_hash "close.example.com" in
  let accepted = ref None in
  I3apps.Session.listen bmgr ~public ~on_accept:(fun s -> accepted := Some s);
  let mine = ref None in
  I3apps.Session.connect amgr ~public ~on_ready:(fun s -> mine := Some s);
  I3.Deployment.run_for d 2_000.;
  let s = Option.get !mine in
  Alcotest.(check bool) "established before close" true
    (I3apps.Session.is_established s);
  I3apps.Session.close s;
  I3apps.Session.close s (* idempotent *);
  Alcotest.(check bool) "closed" false (I3apps.Session.is_established s);
  (* the private trigger is gone: data to it dies at the server *)
  I3.Deployment.run_for d 500.;
  let heard = ref 0 in
  (match !accepted with
  | Some peer ->
      I3apps.Session.on_data peer (fun _ -> incr heard);
      I3apps.Session.send peer "into-the-void"
  | None -> Alcotest.fail "no accepted session");
  I3.Deployment.run_for d 500.;
  Alcotest.(check int) "nothing heard after close" 0 !heard

(* --- Mobility flows --- *)

let test_mobility_flow_roaming () =
  let d = deployment ~seed:117 () in
  let listener = I3.Deployment.new_host d () in
  let sender = I3.Deployment.new_host d () in
  let heard = ref 0 in
  let flow =
    I3apps.Mobility.establish ~rng:(I3.Deployment.rng d) ~listener ~sender
      ~on_data:(fun _ -> incr heard)
  in
  I3.Deployment.run_for d 500.;
  (* roam through three sites while a packet is sent every second *)
  I3apps.Mobility.roam ~engine:(I3.Deployment.engine d) flow ~sites:[ 0; 0; 0 ]
    ~dwell_ms:3_000.;
  for _ = 1 to 12 do
    I3apps.Mobility.send flow "tick";
    I3.Deployment.run_for d 1_000.
  done;
  Alcotest.(check int) "all ticks heard across moves" 12 (I3apps.Mobility.received flow);
  Alcotest.(check int) "callback fired" 12 !heard

let test_mobility_simultaneous_moves () =
  let d = deployment ~seed:118 () in
  let listener = I3.Deployment.new_host d () in
  let sender = I3.Deployment.new_host d () in
  let flow =
    I3apps.Mobility.establish ~rng:(I3.Deployment.rng d) ~listener ~sender
      ~on_data:(fun _ -> ())
  in
  I3.Deployment.run_for d 500.;
  I3apps.Mobility.send flow "a";
  I3.Deployment.run_for d 500.;
  I3apps.Mobility.move_receiver flow ~new_site:0;
  I3apps.Mobility.move_sender flow ~new_site:0;
  I3.Deployment.run_for d 500.;
  I3apps.Mobility.send flow "b";
  I3.Deployment.run_for d 500.;
  Alcotest.(check int) "both delivered" 2 (I3apps.Mobility.received flow)

(* --- Proxy --- *)

let test_proxy_request_reply () =
  let d = deployment ~seed:119 () in
  let server_host = I3.Deployment.new_host d () in
  let client_host = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let sproxy = I3apps.Proxy.create server_host (Rng.split rng) in
  let cproxy = I3apps.Proxy.create client_host (Rng.split rng) in
  I3apps.Proxy.expose sproxy ~name:"time.example.com" ~handler:(fun req ->
      Some ("pong:" ^ req));
  I3.Deployment.run_for d 500.;
  let reply = ref None in
  I3apps.Proxy.request cproxy ~name:"time.example.com" ~payload:"ping"
    ~on_reply:(fun r -> reply := Some r);
  I3.Deployment.run_for d 1_000.;
  Alcotest.(check (option string)) "reply" (Some "pong:ping") !reply

let test_proxy_concurrent_requests_correlate () =
  let d = deployment ~seed:120 () in
  let server_host = I3.Deployment.new_host d () in
  let client_host = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let sproxy = I3apps.Proxy.create server_host (Rng.split rng) in
  let cproxy = I3apps.Proxy.create client_host (Rng.split rng) in
  I3apps.Proxy.expose sproxy ~name:"svc" ~handler:(fun req -> Some ("r" ^ req));
  I3.Deployment.run_for d 500.;
  let replies = Hashtbl.create 4 in
  List.iter
    (fun p ->
      I3apps.Proxy.request cproxy ~name:"svc" ~payload:p ~on_reply:(fun r ->
          Hashtbl.replace replies p r))
    [ "1"; "2"; "3" ];
  I3.Deployment.run_for d 1_000.;
  List.iter
    (fun p ->
      Alcotest.(check (option string)) ("reply " ^ p) (Some ("r" ^ p))
        (Hashtbl.find_opt replies p))
    [ "1"; "2"; "3" ]

let test_proxy_oneway () =
  let d = deployment ~seed:121 () in
  let server_host = I3.Deployment.new_host d () in
  let client_host = I3.Deployment.new_host d () in
  let rng = I3.Deployment.rng d in
  let sproxy = I3apps.Proxy.create server_host (Rng.split rng) in
  let cproxy = I3apps.Proxy.create client_host (Rng.split rng) in
  let seen = ref [] in
  I3apps.Proxy.expose sproxy ~name:"log" ~handler:(fun req ->
      seen := req :: !seen;
      None);
  I3.Deployment.run_for d 500.;
  I3apps.Proxy.send_oneway cproxy ~name:"log" "event-1";
  I3.Deployment.run_for d 500.;
  Alcotest.(check (list string)) "datagram arrived" [ "event-1" ] !seen

let test_proxy_public_id_stable () =
  Alcotest.(check bool) "hash-derived" true
    (Id.equal
       (I3apps.Proxy.public_id ~name:"cnn.com")
       (Id.name_hash "cnn.com"))

(* --- Anonymity --- *)

let test_anonymity_chain_delivers () =
  let d = deployment ~seed:130 ~n_servers:32 () in
  let recv = I3.Deployment.new_host d () in
  let send = I3.Deployment.new_host d () in
  let got = collect recv in
  let shield = I3apps.Anonymity.build recv (I3.Deployment.rng d) ~hops:3 in
  I3.Deployment.run_for d 1_000.;
  I3.Host.send send (I3apps.Anonymity.entry_id shield) "whisper";
  I3.Deployment.run_for d 1_000.;
  Alcotest.(check (list string)) "delivered through the chain" [ "whisper" ]
    (got ());
  Alcotest.(check int) "three chain ids" 3
    (List.length (I3apps.Anonymity.chain_ids shield))

let test_anonymity_entry_server_blind () =
  let d = deployment ~seed:131 ~n_servers:32 () in
  let recv = I3.Deployment.new_host d () in
  let shield = I3apps.Anonymity.build recv (I3.Deployment.rng d) ~hops:3 in
  I3.Deployment.run_for d 1_000.;
  Alcotest.(check bool) "only the exit server maps an id to an address" true
    (I3apps.Anonymity.exit_server_only_knows_addr d shield);
  I3apps.Anonymity.tear_down shield;
  I3.Deployment.run_for d 1_000.;
  Alcotest.(check int) "chain removed" 0 (I3.Deployment.total_triggers d)

let test_anonymity_receiver_never_sees_sender_addr () =
  let d = deployment ~seed:132 ~n_servers:32 () in
  let recv = I3.Deployment.new_host d () in
  let send = I3.Deployment.new_host d () in
  let shield = I3apps.Anonymity.build recv (I3.Deployment.rng d) ~hops:2 in
  I3.Deployment.run_for d 1_000.;
  (* watch every message addressed to the receiver *)
  let sources = ref [] in
  Net.set_tap (I3.Deployment.net d) (fun ~src ~dst msg ->
      match msg with
      | I3.Message.Deliver _ when dst = I3.Host.addr recv ->
          sources := src :: !sources
      | _ -> ());
  I3.Host.send send (I3apps.Anonymity.entry_id shield) "x";
  I3.Deployment.run_for d 1_000.;
  Alcotest.(check bool) "data arrived" true (!sources <> []);
  List.iter
    (fun src ->
      Alcotest.(check bool) "delivery came from a server, not the sender"
        true
        (src <> I3.Host.addr send))
    !sources

(* --- Reliable delivery --- *)

let test_reliable_in_order_no_loss () =
  let d = deployment ~seed:140 ~n_servers:16 () in
  let rng = I3.Deployment.rng d in
  let received = ref [] in
  let r =
    I3apps.Reliable.receiver (I3.Deployment.new_host d ()) (Rng.split rng)
      ~on_data:(fun m -> received := m :: !received)
  in
  I3.Deployment.run_for d 1_000.;
  let s =
    I3apps.Reliable.sender (I3.Deployment.new_host d ()) (Rng.split rng)
      ~dest:(I3apps.Reliable.receiver_id r)
  in
  I3.Deployment.run_for d 1_000.;
  let messages = List.init 40 (Printf.sprintf "msg-%02d") in
  List.iter (I3apps.Reliable.send s) messages;
  I3.Deployment.run_for d 20_000.;
  Alcotest.(check (list string)) "all in order" messages (List.rev !received);
  Alcotest.(check int) "nothing in flight" 0 (I3apps.Reliable.in_flight s);
  Alcotest.(check int) "no spurious retransmissions" 0
    (I3apps.Reliable.retransmissions s)

let test_reliable_survives_heavy_loss () =
  let d = deployment ~seed:141 ~n_servers:16 () in
  let rng = I3.Deployment.rng d in
  let received = ref [] in
  let r =
    I3apps.Reliable.receiver (I3.Deployment.new_host d ()) (Rng.split rng)
      ~on_data:(fun m -> received := m :: !received)
  in
  I3.Deployment.run_for d 1_000.;
  let s =
    I3apps.Reliable.sender ~rto_ms:500.
      (I3.Deployment.new_host d ())
      (Rng.split rng)
      ~dest:(I3apps.Reliable.receiver_id r)
  in
  I3.Deployment.run_for d 1_000.;
  (* 20% of every datagram — data, acks, refreshes — vanishes *)
  Net.set_loss_rate (I3.Deployment.net d) 0.2;
  let messages = List.init 50 (Printf.sprintf "msg-%02d") in
  List.iter (I3apps.Reliable.send s) messages;
  I3.Deployment.run_for d 120_000.;
  Alcotest.(check (list string)) "all delivered in order despite loss"
    messages (List.rev !received);
  Alcotest.(check bool) "loss forced retransmissions" true
    (I3apps.Reliable.retransmissions s > 0)

let test_reliable_window_bounds_flight () =
  let d = deployment ~seed:142 ~n_servers:16 () in
  let rng = I3.Deployment.rng d in
  let r =
    I3apps.Reliable.receiver (I3.Deployment.new_host d ()) (Rng.split rng)
      ~on_data:(fun _ -> ())
  in
  I3.Deployment.run_for d 1_000.;
  let s =
    I3apps.Reliable.sender ~window:4
      (I3.Deployment.new_host d ())
      (Rng.split rng)
      ~dest:(I3apps.Reliable.receiver_id r)
  in
  I3.Deployment.run_for d 1_000.;
  List.iter (I3apps.Reliable.send s) (List.init 20 string_of_int);
  Alcotest.(check int) "window caps flight" 4 (I3apps.Reliable.in_flight s);
  Alcotest.(check int) "rest queued" 16 (I3apps.Reliable.queued s);
  I3.Deployment.run_for d 30_000.;
  Alcotest.(check int) "drained" 0 (I3apps.Reliable.in_flight s);
  Alcotest.(check int) "all delivered" 20 (I3apps.Reliable.received_count r)

let () =
  Alcotest.run "i3apps"
    [
      ( "multicast",
        [
          Alcotest.test_case "fanout to all members" `Quick test_multicast_fanout;
          Alcotest.test_case "unicast->multicast switch" `Quick test_multicast_unicast_switch;
          Alcotest.test_case "leave" `Quick test_multicast_leave;
        ] );
      ( "scalable multicast",
        [
          test_smc_plan_invariants;
          Alcotest.test_case "rejects degree 1" `Quick test_smc_plan_rejects_degree_one;
          Alcotest.test_case "end to end over tree" `Quick test_smc_end_to_end;
          Alcotest.test_case "small group attaches at root" `Quick test_smc_small_group_direct;
        ] );
      ( "anycast",
        [
          Alcotest.test_case "exactly-one delivery" `Quick test_anycast_exactly_one;
          test_anycast_ids_share_prefix;
          Alcotest.test_case "preference selects member" `Quick test_anycast_preference_selects;
        ] );
      ( "server selection",
        [
          Alcotest.test_case "weighted load balance" `Quick test_selection_weighted_load;
          Alcotest.test_case "adaptive capacity" `Quick test_selection_set_capacity;
          Alcotest.test_case "locality" `Quick test_selection_locality;
        ] );
      ( "service composition",
        [
          Alcotest.test_case "single transcoder" `Quick test_composition_single_service;
          Alcotest.test_case "two services in order" `Quick test_composition_two_services_in_order;
          Alcotest.test_case "stack limit" `Quick test_composition_stack_limit;
        ] );
      ( "heterogeneous multicast",
        [ Alcotest.test_case "MPEG + H.263 receivers" `Quick test_heterogeneous_multicast ] );
      ( "sessions",
        [
          Alcotest.test_case "handshake + duplex" `Quick test_session_handshake_and_duplex;
          Alcotest.test_case "survives simultaneous mobility" `Quick test_session_survives_mobility;
          Alcotest.test_case "close" `Quick test_session_close_tears_down;
        ] );
      ( "mobility",
        [
          Alcotest.test_case "roaming flow" `Quick test_mobility_flow_roaming;
          Alcotest.test_case "simultaneous moves" `Quick test_mobility_simultaneous_moves;
        ] );
      ( "anonymity",
        [
          Alcotest.test_case "chain delivers" `Quick test_anonymity_chain_delivers;
          Alcotest.test_case "entry server blind" `Quick test_anonymity_entry_server_blind;
          Alcotest.test_case "receiver never sees sender" `Quick
            test_anonymity_receiver_never_sees_sender_addr;
        ] );
      ( "reliable delivery",
        [
          Alcotest.test_case "in order, no loss" `Quick test_reliable_in_order_no_loss;
          Alcotest.test_case "survives 20% loss" `Quick test_reliable_survives_heavy_loss;
          Alcotest.test_case "window bounds flight" `Quick test_reliable_window_bounds_flight;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "request/reply" `Quick test_proxy_request_reply;
          Alcotest.test_case "correlation" `Quick test_proxy_concurrent_requests_correlate;
          Alcotest.test_case "one-way" `Quick test_proxy_oneway;
          Alcotest.test_case "public id" `Quick test_proxy_public_id_stable;
        ] );
    ]
