(* Host-side i3 client over real UDP: the reliability layer bin/i3d
   callers never had.

   The daemon's trigger protocol is ack'd but fire-and-forget at the
   transport: an Insert lost on the wire (or addressed to a dead server)
   simply vanishes.  This client adds the paper's end-host half of the
   robustness story (Sec. IV-C): every insert waits for its Insert_ack
   under a per-attempt timeout, retries under a jittered exponential
   backoff with a bounded budget, re-homes from the acked server back to
   a gateway when the server dies, and keeps every registered trigger
   alive by periodic refresh — which is precisely the mechanism that
   repopulates a restarted daemon's empty soft state after a crash.

   All sends go through an optional [Faulty] decorator so chaos
   scenarios exercise this exact code path; every decision the client
   takes is visible in the metrics registry ([client.retries],
   [client.timeouts], [client.gave_up], ...). *)

type config = {
  attempt_timeout_ms : float;
  max_attempts : int;
  backoff_base_ms : float;
  backoff_factor : float;
  backoff_max_ms : float;
  jitter : float;
  refresh_period_ms : float;
}

let default_config =
  {
    attempt_timeout_ms = 250.;
    max_attempts = 5;
    backoff_base_ms = 50.;
    backoff_factor = 2.;
    backoff_max_ms = 2_000.;
    jitter = 0.2;
    (* Refresh at a third of the lifetime: two refreshes may be lost
       outright before a live trigger can expire. *)
    refresh_period_ms = I3.Trigger.default_lifetime_ms /. 3.;
  }

type binding = {
  trigger : I3.Trigger.t;
  mutable last_ack : float;  (* ms clock of the latest Insert_ack, -inf if none *)
  mutable server : int option;  (* who acked last; first retry target *)
  mutable refresh_attempts : int;
      (* consecutive unacked refresh sends since the refresh came due *)
  mutable next_refresh_send : float;  (* earliest clock for the next one *)
}

type pong = { server : int; triggers : int; uptime_ms : float }

(* Engine-style visibility: every binding-lifecycle decision the client
   takes is reported as a value, so callers (and tests) observe the
   reliability machinery without scraping counters. *)
type event =
  | Acked of { trigger : I3.Trigger.t; server : int }
  | Refresh_sent of { trigger : I3.Trigger.t; dst : int }
  | Rehomed of { trigger : I3.Trigger.t; stale : int }
  | Gave_up of I3.Trigger.t

type t = {
  udp : Udp.t;
  faulty : Faulty.t option;
  rng : Rng.t;
  cfg : config;
  clock : unit -> float;
  gateways : int array;
  mutable gw : int;
  mutable bindings : binding list;
  mutable on_deliver : stack:I3.Packet.stack -> payload:string -> unit;
  mutable on_event : event -> unit;
  pongs : (int, pong) Hashtbl.t;  (* nonce -> reply *)
  c_sends : Obs.Metrics.counter;
  c_retries : Obs.Metrics.counter;
  c_timeouts : Obs.Metrics.counter;
  c_gave_up : Obs.Metrics.counter;
  c_acks : Obs.Metrics.counter;
  c_refreshes : Obs.Metrics.counter;
  c_delivers : Obs.Metrics.counter;
  c_data : Obs.Metrics.counter;
  c_decode_errors : Obs.Metrics.counter;
}

let wall_ms () = Unix.gettimeofday () *. 1000.

let handle t ~src:_ bytes =
  match I3.Codec.decode bytes with
  | Error _ -> Obs.Metrics.incr t.c_decode_errors
  | Ok (I3.Message.Insert_ack { trigger; server }) -> (
      match
        List.find_opt
          (fun b -> I3.Trigger.same_binding b.trigger trigger)
          t.bindings
      with
      | Some b ->
          Obs.Metrics.incr t.c_acks;
          b.last_ack <- t.clock ();
          b.server <- Some server;
          t.on_event (Acked { trigger = b.trigger; server })
      | None -> ())
  | Ok (I3.Message.Deliver { stack; payload; trace = _ }) ->
      Obs.Metrics.incr t.c_delivers;
      t.on_deliver ~stack ~payload
  | Ok (I3.Message.Pong { nonce; server; triggers; uptime_ms }) ->
      Hashtbl.replace t.pongs nonce { server; triggers; uptime_ms }
  | Ok _ -> ()

let create ?(metrics = Obs.Metrics.default) ?(config = default_config)
    ?(instance = "client") ?(clock = wall_ms) ?faulty ~rng ~gateways udp =
  if gateways = [] then invalid_arg "Client.create: need at least one gateway";
  let labels = [ ("instance", instance) ] in
  let c name = Obs.Metrics.counter metrics ~labels name in
  let t =
    {
      udp;
      faulty;
      rng;
      cfg = config;
      clock;
      gateways = Array.of_list gateways;
      gw = 0;
      bindings = [];
      on_deliver = (fun ~stack:_ ~payload:_ -> ());
      on_event = (fun _ -> ());
      pongs = Hashtbl.create 8;
      c_sends = c "client.sends";
      c_retries = c "client.retries";
      c_timeouts = c "client.timeouts";
      c_gave_up = c "client.gave_up";
      c_acks = c "client.acks";
      c_refreshes = c "client.refreshes";
      c_delivers = c "client.delivers";
      c_data = c "client.data_sent";
      c_decode_errors =
        Obs.Metrics.counter metrics
          ~labels:(labels @ [ ("proto", "i3") ])
          "wire.decode_errors";
    }
  in
  Udp.set_handler udp (handle t);
  t

let local_addr t = Udp.local_addr t.udp
let on_deliver t f = t.on_deliver <- f
let on_event t f = t.on_event <- f
let gateway t = t.gateways.(t.gw)
let rotate_gateway t = t.gw <- (t.gw + 1) mod Array.length t.gateways

let raw_send t ~dst bytes =
  match t.faulty with
  | Some f -> Faulty.send f ~dst bytes
  | None -> Udp.send t.udp ~dst bytes

let send_msg t ~dst m = raw_send t ~dst (I3.Codec.encode m)

(* One blocking receive step: release due delayed datagrams, then wait
   for at most [timeout] seconds of socket traffic.  EINTR (a signal
   mid-select) counts as an empty wait. *)
let wait t ~timeout =
  (match t.faulty with Some f -> ignore (Faulty.flush f) | None -> ());
  match Udp.wait t.udp ~timeout with
  | handled -> handled
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* Wait until [until ()] or the ms deadline; tight 20 ms slices keep the
   delay queue draining while we block. *)
let poll_until t ~deadline until =
  let rec go () =
    if until () then true
    else
      let left = deadline -. t.clock () in
      if left <= 0. then false
      else begin
        ignore (wait t ~timeout:(Float.min (left /. 1000.) 0.02));
        go ()
      end
  in
  go ()

let backoff_ms t attempt =
  let raw =
    t.cfg.backoff_base_ms *. (t.cfg.backoff_factor ** float_of_int attempt)
  in
  let capped = Float.min raw t.cfg.backoff_max_ms in
  if t.cfg.jitter <= 0. then capped
  else
    (* full-jitter style: uniform in [capped*(1-j), capped*(1+j)] *)
    let j = t.cfg.jitter in
    Rng.float_in t.rng (capped *. (1. -. j)) (capped *. (1. +. j))

let find_binding t trigger =
  List.find_opt
    (fun b -> I3.Trigger.same_binding b.trigger trigger)
    t.bindings

(* One ack-awaited insert round against [dst]: up to [max_attempts]
   sends, each with its own timeout, separated by jittered exponential
   backoff (during which we keep polling — an ack that beats the backoff
   ends the wait early). *)
let insert_round t b ~dst =
  let started = t.clock () in
  let acked () = b.last_ack >= started in
  let rec attempt i =
    if i > t.cfg.max_attempts then false
    else begin
      if i > 1 then Obs.Metrics.incr t.c_retries;
      Obs.Metrics.incr t.c_sends;
      send_msg t ~dst (I3.Message.Insert { trigger = b.trigger; token = None });
      if poll_until t ~deadline:(t.clock () +. t.cfg.attempt_timeout_ms) acked
      then true
      else begin
        Obs.Metrics.incr t.c_timeouts;
        if i = t.cfg.max_attempts then false
        else if
          (* Back off, still listening: a late ack for the in-flight
             attempt is as good as a fresh one. *)
          poll_until t ~deadline:(t.clock () +. backoff_ms t (i - 1)) acked
        then true
        else attempt (i + 1)
      end
    end
  in
  attempt 1

let insert t trigger =
  let b =
    match find_binding t trigger with
    | Some b -> b
    | None ->
        let b =
          {
            trigger;
            last_ack = Float.neg_infinity;
            server = None;
            refresh_attempts = 0;
            next_refresh_send = Float.neg_infinity;
          }
        in
        t.bindings <- b :: t.bindings;
        b
  in
  (* First round towards whoever acked last (the responsible server, a
     single hop); when that fails — typically because the server died —
     fall back to a gateway round, rotating gateways between failures.
     This is the client-side re-homing of Sec. IV-C. *)
  let rounds =
    match b.server with
    | Some s when s <> gateway t -> [ s; gateway t ]
    | _ -> [ gateway t ]
  in
  let ok = List.exists (fun dst -> insert_round t b ~dst) rounds in
  if ok then `Acked
  else begin
    Obs.Metrics.incr t.c_gave_up;
    b.server <- None;
    rotate_gateway t;
    t.on_event (Gave_up b.trigger);
    `Gave_up
  end

let remove t trigger =
  (match find_binding t trigger with
  | Some b ->
      t.bindings <- List.filter (fun b' -> b' != b) t.bindings;
      send_msg t
        ~dst:(match b.server with Some s -> s | None -> gateway t)
        (I3.Message.Remove { trigger })
  | None -> send_msg t ~dst:(gateway t) (I3.Message.Remove { trigger }));
  ()

let triggers t = List.map (fun b -> b.trigger) t.bindings

(* Soft-state maintenance, deliberately non-blocking: each call sends at
   most one refresh Insert per due binding and returns — the caller's
   loop cadence paces the retries, so a dead server can never stall the
   application (or a chaos schedule) for a retry budget.  After a server
   crash this is what re-populates the restarted daemon: the refresh
   keeps retrying forever (the binding is ours until [remove]), first at
   the server that acked last, then via a gateway — the client-side
   re-homing of Sec. IV-C, spread over calls instead of a blocking
   round. *)
let maintain_at t now =
  List.iter
    (fun b ->
      if now -. b.last_ack >= t.cfg.refresh_period_ms then begin
        if now >= b.next_refresh_send then begin
          if b.refresh_attempts = 0 then Obs.Metrics.incr t.c_refreshes
          else begin
            (* The previous refresh send went unacked a full attempt
               timeout: that's a timeout and this send is its retry. *)
            Obs.Metrics.incr t.c_timeouts;
            Obs.Metrics.incr t.c_retries
          end;
          let dst =
            match b.server with
            | Some s when b.refresh_attempts < 2 -> s
            | _ -> gateway t
          in
          (* Two misses at the acked server mean it is gone (or
             unreachable); forget it and re-home through the ring. *)
          (match b.server with
          | Some stale when b.refresh_attempts >= 2 ->
              b.server <- None;
              t.on_event (Rehomed { trigger = b.trigger; stale })
          | _ -> ());
          Obs.Metrics.incr t.c_sends;
          send_msg t ~dst
            (I3.Message.Insert { trigger = b.trigger; token = None });
          t.on_event (Refresh_sent { trigger = b.trigger; dst });
          b.refresh_attempts <- b.refresh_attempts + 1;
          b.next_refresh_send <-
            now +. t.cfg.attempt_timeout_ms
            +. backoff_ms t (Int.min (b.refresh_attempts - 1) 8)
        end
      end
      else begin
        b.refresh_attempts <- 0;
        b.next_refresh_send <- Float.neg_infinity
      end)
    t.bindings

(* The uniform transport maintenance step: drain due fault-layer
   datagrams, dispatch everything queued on the socket, then run the
   refresh state machine once.  Never blocks. *)
let poll t ~now =
  (match t.faulty with Some f -> ignore (Faulty.flush f) | None -> ());
  Udp.poll t.udp ~now;
  maintain_at t now

let maintain t = maintain_at t (t.clock ())

let send_data t ?ttl ?(trace = 0) ~stack ~payload () =
  Obs.Metrics.incr t.c_data;
  let p = I3.Packet.make ?ttl ~trace ~stack ~payload () in
  send_msg t ~dst:(gateway t) (I3.Message.Data p)

let ping t ~dst ~timeout_ms =
  let nonce = Rng.bits62 t.rng land 0xff_ffff_ffff in
  send_msg t ~dst (I3.Message.Ping { nonce });
  let got () = Hashtbl.mem t.pongs nonce in
  if poll_until t ~deadline:(t.clock () +. timeout_ms) got then begin
    let p = Hashtbl.find t.pongs nonce in
    Hashtbl.remove t.pongs nonce;
    Some p
  end
  else None

(* Run the receive/maintenance side for [duration_ms]: the idle loop of
   an end-host that only listens (flows measure delivery through the
   [on_deliver] callback). *)
let run t ~duration_ms =
  let deadline = t.clock () +. duration_ms in
  while t.clock () < deadline do
    ignore (wait t ~timeout:0.02);
    poll t ~now:(t.clock ())
  done
