lib/id/id.mli: Format Rng
