(* Qualified aliases for simnet's unwrapped modules, so wrapped libraries
   that define their own [Engine] (e.g. [I3.Engine]) can still name the
   simulator's. *)
module Engine = Engine
module Net = Net
module Faults = Faults
