(* Tests for lib/simnet: engine (virtual clock) and net (best-effort IP). *)

let feq = Alcotest.float 1e-9

(* --- Engine --- *)

let test_engine_time_starts_zero () =
  Alcotest.check feq "t=0" 0. (Engine.now (Engine.create ()))

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:30. (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:10. (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:20. (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.check feq "clock at last event" 30. (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:7. (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO for equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~delay:5. (fun () ->
      fired := ("a", Engine.now e) :: !fired;
      Engine.schedule e ~delay:5. (fun () ->
          fired := ("b", Engine.now e) :: !fired));
  Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "nested event at t=10"
    [ ("a", 5.); ("b", 10.) ]
    (List.rev !fired)

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let t = ref (-1.) in
  Engine.schedule e ~delay:(-5.) (fun () -> t := Engine.now e);
  Engine.run e;
  Alcotest.check feq "clamped to now" 0. !t

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:10. (fun () -> incr fired);
  Engine.schedule e ~delay:20. (fun () -> incr fired);
  Engine.run_until e 15.;
  Alcotest.(check int) "only first" 1 !fired;
  Alcotest.check feq "clock advanced to limit" 15. (Engine.now e);
  Engine.run_until e 25.;
  Alcotest.(check int) "second fired" 2 !fired

let test_engine_run_for () =
  let e = Engine.create () in
  Engine.run_for e 100.;
  Alcotest.check feq "clock advances without events" 100. (Engine.now e)

let test_engine_periodic () =
  let e = Engine.create () in
  let count = ref 0 in
  let timer = Engine.every e ~period:10. (fun () -> incr count) in
  Engine.run_until e 55.;
  Alcotest.(check int) "5 ticks in 55ms (phase=10)" 5 !count;
  Engine.cancel timer;
  Engine.run_until e 200.;
  Alcotest.(check int) "no ticks after cancel" 5 !count

let test_engine_periodic_phase () =
  let e = Engine.create () in
  let first = ref (-1.) in
  let timer =
    Engine.every e ~phase:3. ~period:10. (fun () ->
        if !first < 0. then first := Engine.now e)
  in
  Engine.run_until e 30.;
  Engine.cancel timer;
  Alcotest.check feq "first tick at phase" 3. !first

let test_engine_bad_period () =
  let e = Engine.create () in
  Alcotest.check_raises "period 0"
    (Invalid_argument "Engine.every: period must be positive") (fun () ->
      ignore (Engine.every e ~period:0. (fun () -> ())))

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  Engine.schedule e ~delay:1. (fun () -> ());
  Alcotest.(check bool) "one step" true (Engine.step e);
  Alcotest.(check bool) "drained" false (Engine.step e)

(* --- Net --- *)

let mk_net ?(latency = fun _ _ -> 10.) () =
  let e = Engine.create () in
  let net = Net.create e ~rng:(Rng.create 1L) ~latency () in
  (e, net)

let test_net_delivery_latency () =
  let e, net = mk_net ~latency:(fun a b -> float_of_int (abs (a - b)) *. 5.) () in
  let got = ref [] in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:4 (fun ~src m -> got := (src, m, Engine.now e) :: !got) in
  Net.send net ~src:a ~dst:b "hi";
  Engine.run e;
  match !got with
  | [ (src, m, t) ] ->
      Alcotest.(check int) "src" a src;
      Alcotest.(check string) "payload" "hi" m;
      Alcotest.check feq "latency 20ms" 20. t
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_net_self_send () =
  let e, net = mk_net () in
  let got = ref 0 in
  let a = Net.register net ~site:3 (fun ~src:_ _ -> incr got) in
  Net.send net ~src:a ~dst:a "loop";
  Engine.run e;
  Alcotest.(check int) "self delivery" 1 !got

let test_net_down_endpoint () =
  let e, net = mk_net () in
  let got = ref 0 in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> incr got) in
  Net.set_down net b;
  Net.send net ~src:a ~dst:b "x";
  Engine.run e;
  Alcotest.(check int) "not delivered" 0 !got;
  Net.set_up net b;
  Net.send net ~src:a ~dst:b "y";
  Engine.run e;
  Alcotest.(check int) "delivered after revive" 1 !got;
  let st = Net.stats net in
  Alcotest.(check int) "dropped_down" 1 st.Net.dropped_down

let test_net_down_sender () =
  let e, net = mk_net () in
  let got = ref 0 in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> incr got) in
  Net.set_down net a;
  Net.send net ~src:a ~dst:b "x";
  Engine.run e;
  Alcotest.(check int) "dead senders send nothing" 0 !got

let test_net_in_flight_survives_sender_death () =
  (* IP semantics: a packet already in flight is delivered even if the
     sender dies meanwhile. *)
  let e, net = mk_net () in
  let got = ref 0 in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> incr got) in
  Net.send net ~src:a ~dst:b "x";
  Net.set_down net a;
  Engine.run e;
  Alcotest.(check int) "delivered" 1 !got

let test_net_loss () =
  let e, net = mk_net () in
  Net.set_loss_rate net 0.5;
  let got = ref 0 in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> incr got) in
  for _ = 1 to 1000 do
    Net.send net ~src:a ~dst:b "x"
  done;
  Engine.run e;
  Alcotest.(check bool) "roughly half lost" true (!got > 350 && !got < 650);
  let st = Net.stats net in
  Alcotest.(check int) "conservation" 1000 (st.Net.delivered + st.Net.dropped_loss)

let test_net_loss_bad_rate () =
  let _, net = mk_net () in
  Alcotest.check_raises "rate > 1"
    (Invalid_argument "Net.set_loss_rate: need 0 <= p <= 1") (fun () ->
      Net.set_loss_rate net 1.5);
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Net.set_loss_rate: need 0 <= p <= 1") (fun () ->
      Net.set_loss_rate net (-0.1))

let test_net_blackhole () =
  (* p = 1 is a total blackhole: every message dropped, all counted. *)
  let e, net = mk_net () in
  Net.set_loss_rate net 1.;
  let got = ref 0 in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> incr got) in
  for _ = 1 to 50 do
    Net.send net ~src:a ~dst:b "x"
  done;
  Engine.run e;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "all counted as loss" 50 (Net.stats net).Net.dropped_loss;
  Net.set_loss_rate net 0.;
  Net.send net ~src:a ~dst:b "y";
  Engine.run e;
  Alcotest.(check int) "delivery resumes" 1 !got

let test_net_move () =
  let e, net = mk_net ~latency:(fun a b -> float_of_int (abs (a - b)) +. 1.) () in
  let when_got = ref [] in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> when_got := Engine.now e :: !when_got) in
  Net.send net ~src:a ~dst:b "x";
  Engine.run e;
  Net.move net b 100;
  Net.send net ~src:a ~dst:b "y";
  Engine.run e;
  (match List.rev !when_got with
  | [ t1; t2 ] ->
      Alcotest.check feq "before move" 2. t1;
      Alcotest.check feq "after move" (2. +. 101.) t2
  | _ -> Alcotest.fail "expected two deliveries");
  Alcotest.(check int) "site updated" 100 (Net.site net b)

let test_net_tap_and_stats () =
  let e, net = mk_net () in
  let tapped = ref 0 in
  Net.set_tap net (fun ~src:_ ~dst:_ _ -> incr tapped);
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> ()) in
  Net.send net ~src:a ~dst:b "x";
  Net.send net ~src:b ~dst:a "y";
  Engine.run e;
  Alcotest.(check int) "tap saw both" 2 !tapped;
  let st = Net.stats net in
  Alcotest.(check int) "sent" 2 st.Net.sent;
  Alcotest.(check int) "delivered" 2 st.Net.delivered;
  Alcotest.(check int) "endpoints" 2 (Net.endpoint_count net)

let test_net_unknown_addr () =
  let _, net = mk_net () in
  Alcotest.check_raises "unknown addr" (Invalid_argument "Net: unknown address")
    (fun () -> Net.send net ~src:0 ~dst:1 "x")

let test_net_handler_swap () =
  let e, net = mk_net () in
  let log = ref [] in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:0 (fun ~src:_ _ -> log := "old" :: !log) in
  Net.set_handler net b (fun ~src:_ _ -> log := "new" :: !log);
  Net.send net ~src:a ~dst:b "x";
  Engine.run e;
  Alcotest.(check (list string)) "new handler used" [ "new" ] !log

let test_net_many_endpoints () =
  (* Exercise endpoint array growth past the initial capacity. *)
  let e, net = mk_net () in
  let count = ref 0 in
  let addrs =
    List.init 100 (fun i -> Net.register net ~site:i (fun ~src:_ _ -> incr count))
  in
  List.iter (fun dst -> Net.send net ~src:(List.hd addrs) ~dst "x") addrs;
  Engine.run e;
  Alcotest.(check int) "all delivered" 100 !count

(* --- link-level faults --- *)

let test_net_partition_and_heal () =
  let e, net = mk_net () in
  let got = ref 0 in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> incr got) in
  let c = Net.register net ~site:2 (fun ~src:_ _ -> incr got) in
  let pid = Net.partition net [ 0; 1 ] in
  Net.send net ~src:a ~dst:c "cross";
  Net.send net ~src:a ~dst:b "inside";
  Engine.run e;
  Alcotest.(check int) "only the inside message arrives" 1 !got;
  Alcotest.(check int) "drop counted as partition" 1
    (Net.stats net).Net.dropped_partition;
  Net.heal net pid;
  Net.send net ~src:a ~dst:c "after heal";
  Engine.run e;
  Alcotest.(check int) "cross traffic resumes" 2 !got

let test_net_partition_both_directions () =
  let e, net = mk_net () in
  let got = ref 0 in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> incr got) in
  let b = Net.register net ~site:5 (fun ~src:_ _ -> incr got) in
  ignore (Net.partition net [ 0 ]);
  Net.send net ~src:a ~dst:b "->";
  Net.send net ~src:b ~dst:a "<-";
  Engine.run e;
  Alcotest.(check int) "cut both ways" 0 !got;
  Net.heal_all net;
  Net.send net ~src:a ~dst:b "->";
  Net.send net ~src:b ~dst:a "<-";
  Engine.run e;
  Alcotest.(check int) "heal_all restores both ways" 2 !got

let test_net_gray_link_one_way () =
  let e, net = mk_net () in
  let at_a = ref 0 and at_b = ref 0 in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> incr at_a) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> incr at_b) in
  Net.set_link_down net ~src_site:0 ~dst_site:1;
  Net.send net ~src:a ~dst:b "a->b";
  Net.send net ~src:b ~dst:a "b->a";
  Engine.run e;
  Alcotest.(check int) "a->b dropped" 0 !at_b;
  Alcotest.(check int) "b->a still works" 1 !at_a;
  Alcotest.(check int) "counted as gray" 1 (Net.stats net).Net.dropped_gray;
  Net.set_link_up net ~src_site:0 ~dst_site:1;
  Net.send net ~src:a ~dst:b "a->b again";
  Engine.run e;
  Alcotest.(check int) "restored" 1 !at_b

let test_net_burst_loss_extremes () =
  let e, net = mk_net () in
  let got = ref 0 in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> incr got) in
  (* Chain that enters Bad on the first message and never leaves. *)
  Net.set_burst_loss net ~p_enter:1. ~p_exit:0. ();
  for _ = 1 to 20 do
    Net.send net ~src:a ~dst:b "x"
  done;
  Engine.run e;
  Alcotest.(check int) "all dropped in Bad state" 0 !got;
  Alcotest.(check int) "counted as burst" 20 (Net.stats net).Net.dropped_burst;
  Net.clear_burst_loss net;
  Net.send net ~src:a ~dst:b "y";
  Engine.run e;
  Alcotest.(check int) "clear_burst_loss restores" 1 !got

let test_net_burst_loss_bursty () =
  (* With a real two-state chain, losses must cluster: compare the number
     of loss runs against what the same loss count would give i.i.d. *)
  let e, net = mk_net () in
  let log = ref [] in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> ()) in
  Net.set_burst_loss net ~p_enter:0.05 ~p_exit:0.25 ();
  for _ = 1 to 2000 do
    let before = (Net.stats net).Net.dropped_burst in
    Net.send net ~src:a ~dst:b "x";
    log := ((Net.stats net).Net.dropped_burst = before) :: !log
  done;
  Engine.run e;
  let outcomes = Array.of_list (List.rev !log) in
  let losses = Array.fold_left (fun acc ok -> if ok then acc else acc + 1) 0 outcomes in
  let runs = ref 0 in
  Array.iteri
    (fun i ok ->
      if (not ok) && (i = 0 || outcomes.(i - 1)) then incr runs)
    outcomes;
  Alcotest.(check bool) "some loss happened" true (losses > 50);
  (* Mean burst length 1/p_exit = 4: far fewer runs than losses. *)
  Alcotest.(check bool) "losses are clustered" true
    (float_of_int !runs < 0.6 *. float_of_int losses)

let test_net_duplication () =
  let e, net = mk_net () in
  let got = ref 0 in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> incr got) in
  Net.set_duplicate_rate net 1.;
  for _ = 1 to 10 do
    Net.send net ~src:a ~dst:b "x"
  done;
  Engine.run e;
  Alcotest.(check int) "every message delivered twice" 20 !got;
  let st = Net.stats net in
  Alcotest.(check int) "duplicates counted" 10 st.Net.duplicated;
  Alcotest.(check int) "delivered counts copies" 20 st.Net.delivered

let test_net_jitter_and_spike () =
  let e, net = mk_net ~latency:(fun _ _ -> 10.) () in
  let times = ref [] in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> times := Engine.now e :: !times) in
  Net.set_extra_latency net 5.;
  Net.send net ~src:a ~dst:b "x";
  Engine.run e;
  (match !times with
  | [ t ] -> Alcotest.check feq "fixed spike adds 5ms" 15. t
  | _ -> Alcotest.fail "expected one delivery");
  times := [];
  Net.set_extra_latency net 0.;
  Net.set_jitter net 8.;
  let t0 = Engine.now e in
  for _ = 1 to 100 do
    Net.send net ~src:a ~dst:b "x"
  done;
  Engine.run e;
  let ok =
    List.for_all (fun t -> t >= t0 +. 10. && t < t0 +. 10. +. 8.) !times
  in
  Alcotest.(check bool) "jittered deliveries within [latency, latency+jitter)"
    true ok;
  Alcotest.(check bool) "jitter actually varies" true
    (List.sort_uniq compare !times |> List.length > 1)

(* --- fault schedule DSL --- *)

let test_faults_schedule_drives_net () =
  let e, net = mk_net () in
  let got = ref 0 in
  let a = Net.register net ~site:0 (fun ~src:_ _ -> ()) in
  let b = Net.register net ~site:1 (fun ~src:_ _ -> incr got) in
  Faults.install e
    (Faults.net_driver net)
    [
      (10., Faults.Partition [ 0 ]);
      (30., Faults.Heal);
      (50., Faults.Loss 1.);
      (70., Faults.Loss 0.);
    ];
  let send_at t = Engine.schedule e ~delay:t (fun () -> Net.send net ~src:a ~dst:b "x") in
  send_at 5.;
  (* delivered *)
  send_at 15.;
  (* partitioned *)
  send_at 35.;
  (* healed: delivered *)
  send_at 55.;
  (* blackholed *)
  send_at 75.;
  (* delivered *)
  Engine.run e;
  Alcotest.(check int) "schedule toggled faults on time" 3 !got;
  let st = Net.stats net in
  Alcotest.(check int) "one partition drop" 1 st.Net.dropped_partition;
  Alcotest.(check int) "one loss drop" 1 st.Net.dropped_loss

let test_faults_crash_restart_callbacks () =
  let e, net = mk_net () in
  let log = ref [] in
  Faults.install e
    (Faults.net_driver
       ~crash:(fun i -> log := ("crash", i) :: !log)
       ~restart:(fun i -> log := ("restart", i) :: !log)
       net)
    [ (20., Faults.Restart 3); (10., Faults.Crash 3) ];
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "events fire in schedule order regardless of list order"
    [ ("crash", 3); ("restart", 3) ]
    (List.rev !log)

let test_faults_churn_reproducible () =
  let mk seed =
    Faults.churn (Rng.create seed) ~victims:[ 0; 1; 2; 3 ] ~start:100.
      ~spacing:50. ~downtime:200.
  in
  Alcotest.(check bool) "same seed, same schedule" true (mk 7L = mk 7L);
  let s = mk 7L in
  Alcotest.(check int) "one crash and one restart per victim" 8 (List.length s);
  let crash_time = Hashtbl.create 4 and restart_time = Hashtbl.create 4 in
  List.iter
    (fun (t, e) ->
      match e with
      | Faults.Crash i -> Hashtbl.replace crash_time i t
      | Faults.Restart i -> Hashtbl.replace restart_time i t
      | _ -> Alcotest.fail "unexpected event kind")
    s;
  for i = 0 to 3 do
    Alcotest.check feq "downtime respected"
      (Hashtbl.find crash_time i +. 200.)
      (Hashtbl.find restart_time i)
  done;
  let times = List.map fst s in
  Alcotest.(check bool) "schedule sorted by time" true
    (List.sort compare times = times)

let test_net_endpoint_slots_independent () =
  (* Spare capacity slots must not alias one another: crashing one
     endpoint leaves every other endpoint up. *)
  let _, net = mk_net () in
  let addrs = List.init 40 (fun i -> Net.register net ~site:i (fun ~src:_ _ -> ())) in
  Net.set_down net (List.nth addrs 17);
  List.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "endpoint %d up-state" i)
        (i <> 17) (Net.is_up net a))
    addrs

let test_engine_cancel_inside_callback () =
  (* A timer that cancels itself on its first firing must not tick again. *)
  let e = Engine.create () in
  let count = ref 0 in
  let handle = ref None in
  let timer =
    Engine.every e ~period:5. (fun () ->
        incr count;
        match !handle with Some t -> Engine.cancel t | None -> ())
  in
  handle := Some timer;
  Engine.run_until e 100.;
  Alcotest.(check int) "fired exactly once" 1 !count

let test_engine_many_events_order =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:50 ~name:"random schedules fire in time order"
       QCheck2.Gen.(list_size (int_range 1 60) (float_bound_exclusive 1000.))
       (fun delays ->
         let e = Engine.create () in
         let fired = ref [] in
         List.iter
           (fun d -> Engine.schedule e ~delay:d (fun () -> fired := d :: !fired))
           delays;
         Engine.run e;
         let times = List.rev !fired in
         let rec nondecreasing = function
           | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
           | [ _ ] | [] -> true
         in
         (* same multiset, fired in non-decreasing time order *)
         List.sort compare delays = List.sort compare times
         && nondecreasing times))

let () =
  Alcotest.run "simnet"
    [
      ( "engine",
        [
          Alcotest.test_case "starts at zero" `Quick test_engine_time_starts_zero;
          Alcotest.test_case "time ordering" `Quick test_engine_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_schedule;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_clamped;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "run_for advances clock" `Quick test_engine_run_for;
          Alcotest.test_case "periodic timer" `Quick test_engine_periodic;
          Alcotest.test_case "periodic phase" `Quick test_engine_periodic_phase;
          Alcotest.test_case "bad period" `Quick test_engine_bad_period;
          Alcotest.test_case "step" `Quick test_engine_step;
          Alcotest.test_case "cancel inside callback" `Quick
            test_engine_cancel_inside_callback;
          test_engine_many_events_order;
        ] );
      ( "net",
        [
          Alcotest.test_case "latency-faithful delivery" `Quick test_net_delivery_latency;
          Alcotest.test_case "self send" `Quick test_net_self_send;
          Alcotest.test_case "down endpoint" `Quick test_net_down_endpoint;
          Alcotest.test_case "down sender" `Quick test_net_down_sender;
          Alcotest.test_case "in-flight survives sender death" `Quick
            test_net_in_flight_survives_sender_death;
          Alcotest.test_case "random loss" `Quick test_net_loss;
          Alcotest.test_case "loss rate validation" `Quick test_net_loss_bad_rate;
          Alcotest.test_case "blackhole (p = 1)" `Quick test_net_blackhole;
          Alcotest.test_case "mobility (move)" `Quick test_net_move;
          Alcotest.test_case "tap and stats" `Quick test_net_tap_and_stats;
          Alcotest.test_case "unknown address" `Quick test_net_unknown_addr;
          Alcotest.test_case "handler swap" `Quick test_net_handler_swap;
          Alcotest.test_case "endpoint growth" `Quick test_net_many_endpoints;
          Alcotest.test_case "endpoint slots independent" `Quick
            test_net_endpoint_slots_independent;
        ] );
      ( "faults",
        [
          Alcotest.test_case "partition and heal" `Quick test_net_partition_and_heal;
          Alcotest.test_case "partition cuts both ways" `Quick
            test_net_partition_both_directions;
          Alcotest.test_case "gray link is one-way" `Quick test_net_gray_link_one_way;
          Alcotest.test_case "burst loss extremes" `Quick test_net_burst_loss_extremes;
          Alcotest.test_case "burst loss clusters" `Quick test_net_burst_loss_bursty;
          Alcotest.test_case "duplication" `Quick test_net_duplication;
          Alcotest.test_case "jitter and spike" `Quick test_net_jitter_and_spike;
          Alcotest.test_case "schedule drives net" `Quick test_faults_schedule_drives_net;
          Alcotest.test_case "crash/restart callbacks" `Quick
            test_faults_crash_restart_callbacks;
          Alcotest.test_case "churn reproducible" `Quick test_faults_churn_reproducible;
        ] );
    ]
