lib/i3apps/proxy.mli: I3 Id Rng
