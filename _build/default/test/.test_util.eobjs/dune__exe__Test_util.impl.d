test/test_util.ml: Alcotest Array Bytes Char Float Fun Heap Hex List QCheck2 QCheck_alcotest Rng Sha256 Stats String
