(** The substrate bakeoff: Chord variants vs. Koorde, head to head.

    The paper's Sec. VII argues i3 is substrate-agnostic; ROADMAP item 2
    asks what that substrate choice actually buys.  This harness races
    every {!Koorde.Substrate.spec} over the {e same} static membership,
    transit-stub placement, and query set, and reports the three axes of
    the routing-scalability tradeoff:

    - hops (mean and p99) from a random server to the responsible server,
    - first-packet latency stretch (overlay path / direct IP path),
    - modeled routing-state bytes per node.

    Classic Chord pays a log2 n finger table for (log2 n)/2 expected
    hops; Koorde degree 8 keeps ~11 expected table slots — constant in
    n — and still takes about (log2 n)/3 + 1 hops, beating Chord on both
    axes at n = 10^4.  Degree 2 is the minimal-state extreme: ~5 slots,
    log2 n hops.  The proximity heuristics trade the other way, spending state
    to buy stretch, not hops. *)

type params = {
  kind : Topology.Model.kind;
  topo_nodes : int;
  n_servers : int;
  queries : int;
  state_samples : int;  (** nodes sampled for the state-bytes average *)
  seed : int;
  specs : Koorde.Substrate.spec list;
}

val default_params : Topology.Model.kind -> params
(** 5000 topology nodes, n = 10^4 servers, 1000 queries, 256 state
    samples, {!Koorde.Substrate.bakeoff_specs}. *)

type point = {
  spec : Koorde.Substrate.spec;
  mean_hops : float;
  p99_hops : float;
  p50_stretch : float;
  p90_stretch : float;
  state_bytes_mean : float;
  candidates_mean : float;
}

val run : ?progress:(string -> unit) -> params -> point list
(** One point per spec, in [params.specs] order.  Deterministic given
    [seed] (pure virtual-time computation), so results are gateable. *)

val header : string list
val rows : point list -> string list list

val to_json : params -> point list -> Json.t
(** The bench [substrate] section: one object per spec keyed by
    {!Koorde.Substrate.slug}, plus the run's scale parameters. *)
