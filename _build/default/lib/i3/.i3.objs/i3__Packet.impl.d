lib/i3/packet.ml: Buffer Char Format Id Int64 List Net Option Result String
