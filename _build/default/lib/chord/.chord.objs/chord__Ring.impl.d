lib/chord/ring.ml: Id
