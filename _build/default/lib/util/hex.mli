(** Lowercase hexadecimal encoding of byte strings. *)

val encode : string -> string
(** [encode s] renders each byte as two lowercase hex digits. *)

val decode : string -> string
(** Inverse of {!encode}. Accepts upper- or lowercase digits.
    @raise Invalid_argument on odd length or non-hex characters. *)
