lib/simnet/engine.ml: Float Heap Int Option
