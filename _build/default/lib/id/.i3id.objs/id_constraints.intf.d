lib/id/id_constraints.mli: Id
