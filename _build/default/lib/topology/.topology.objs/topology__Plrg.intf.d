lib/topology/plrg.mli: Graph Rng
