lib/eval/ablations.mli:
