(* The effect interpreter between an [I3.Engine] and a byte transport.

   The engine decides *what* happens (protocol state, frames to emit,
   when it next needs the clock); this driver decides *how*: it decodes
   inbound datagrams into engine events, encodes outbound effects into
   datagrams through one [send] closure, and remembers the engine's
   latest [Set_timer] so the owning loop knows how long it may sleep.
   One driver works over any transport that can send bytes — [Udp],
   [Sim], or a [Faulty]-wrapped sender — which is what makes the
   dual-driver parity test meaningful: same engine, same events, same
   effects, different wires.

   The driver is also where step latency is measured: the engine is
   sans-IO and may not read a clock, but the driver sits right at the
   boundary and owns one, so [driver.step_ms] (labeled by event kind)
   is the honest cost of one engine step as a daemon experiences it. *)

module L = Wire.Layout

type t = {
  engine : I3.Engine.t;
  send : dst:int -> string -> unit;
  mutable on_effects : I3.Engine.effect list -> unit;
  mutable next_due : float option;  (* latest Set_timer seen *)
  metrics : Obs.Metrics.t;
  labels : (string * string) list;
  c_frames : Obs.Metrics.counter;
  c_sends : Obs.Metrics.counter;
  c_decode_errors : Obs.Metrics.counter;
  rx_kind : (int, Obs.Metrics.counter) Hashtbl.t;
  tx_kind : (int, Obs.Metrics.counter) Hashtbl.t;
  h_step : (string, Obs.Metrics.histogram) Hashtbl.t;
}

let create ?(metrics = Obs.Metrics.default) ?(instance = "driver") ~send
    engine =
  let labels = [ ("instance", instance) ] in
  {
    engine;
    send;
    on_effects = (fun _ -> ());
    next_due = I3.Engine.next_due engine;
    metrics;
    labels;
    c_frames = Obs.Metrics.counter metrics ~labels "driver.frames";
    c_sends = Obs.Metrics.counter metrics ~labels "driver.sends";
    c_decode_errors =
      Obs.Metrics.counter metrics
        ~labels:(labels @ [ ("proto", "frame") ])
        "wire.decode_errors";
    rx_kind = Hashtbl.create 8;
    tx_kind = Hashtbl.create 8;
    h_step = Hashtbl.create 8;
  }

let engine t = t.engine
let on_effects t f = t.on_effects <- f
let next_due t = t.next_due

(* Per-wire-kind traffic counters, registered on first sight of each
   kind so an idle daemon's registry stays small.  Frames too short to
   carry a kind byte are only an rx concern and count under "runt". *)
let count_kind t cache dir bytes =
  let k =
    if String.length bytes > L.off_kind then Char.code bytes.[L.off_kind]
    else -1
  in
  let c =
    match Hashtbl.find_opt cache k with
    | Some c -> c
    | None ->
        let name = if k < 0 then "runt" else L.kind_name k in
        let c =
          Obs.Metrics.counter t.metrics ~labels:t.labels
            (Printf.sprintf "driver.%s.%s" dir name)
        in
        Hashtbl.replace cache k c;
        c
  in
  Obs.Metrics.incr c

let interpret t effects =
  List.iter
    (fun eff ->
      match I3.Engine.encode_effect eff with
      | Some (dst, bytes) ->
          Obs.Metrics.incr t.c_sends;
          count_kind t t.tx_kind "tx" bytes;
          t.send ~dst bytes
      | None -> (
          match eff with
          | I3.Engine.Set_timer due -> t.next_due <- Some due
          | _ -> ()))
    effects;
  t.on_effects effects

let step_buckets =
  (* 1 µs .. ~130 ms in octaves: engine steps are microseconds when
     healthy, and the overflow bucket catches a stalled sweep. *)
  Obs.Metrics.exponential_buckets ~start:0.001 ~factor:2. ~count:18

let event_kind : I3.Engine.event -> string = function
  | I3.Engine.Tick -> "tick"
  | I3.Engine.Frame _ -> "frame"
  | I3.Engine.Batch _ -> "batch"
  | I3.Engine.Insert_trigger _ -> "insert_trigger"
  | I3.Engine.Remove_trigger _ -> "remove_trigger"
  | I3.Engine.Send_packet _ -> "send_packet"

let step_hist t kind =
  match Hashtbl.find_opt t.h_step kind with
  | Some h -> h
  | None ->
      let h =
        Obs.Metrics.histogram t.metrics
          ~labels:(t.labels @ [ ("event", kind) ])
          ~buckets:step_buckets "driver.step_ms"
      in
      Hashtbl.replace t.h_step kind h;
      h

let step t ~now event =
  let t0 = Unix.gettimeofday () in
  let effects = I3.Engine.step t.engine ~now event in
  Obs.Metrics.observe
    (step_hist t (event_kind event))
    ((Unix.gettimeofday () -. t0) *. 1000.);
  interpret t effects

let on_datagram t ~now ~src bytes =
  Obs.Metrics.incr t.c_frames;
  count_kind t t.rx_kind "rx" bytes;
  match I3.Engine.decode bytes with
  | Error _ -> Obs.Metrics.incr t.c_decode_errors
  | Ok frame -> step t ~now (I3.Engine.Frame { src; frame })

(* Drain a whole receive backlog through one engine step: per-datagram
   accounting stays identical to [on_datagram] (frame counts, rx kinds,
   decode errors), but the decodable frames travel as one [Batch] so
   the engine pays its timer advance and outbox drain once. *)
let on_datagrams t ~now datagrams =
  let frames =
    List.filter_map
      (fun (src, bytes) ->
        Obs.Metrics.incr t.c_frames;
        count_kind t t.rx_kind "rx" bytes;
        match I3.Engine.decode bytes with
        | Error _ ->
            Obs.Metrics.incr t.c_decode_errors;
            None
        | Ok frame -> Some (I3.Engine.Frame { src; frame }))
      datagrams
  in
  match frames with
  | [] -> ()
  | [ one ] -> step t ~now one
  | many -> step t ~now (I3.Engine.Batch many)

let tick t ~now = step t ~now I3.Engine.Tick

(* How long the owning loop may block before the next [tick]: the gap
   to the engine's last announced deadline, clamped to [cap] (seconds,
   for a select timeout) and never negative. *)
let timeout t ~now ~cap =
  match t.next_due with
  | None -> cap
  | Some due -> Float.min cap (Float.max 0. ((due -. now) /. 1000.))
