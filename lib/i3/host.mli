(** End-host library: the public i3 API of Fig. 1(a) plus the client-side
    machinery the paper describes — soft-state refresh, the sender's
    server cache, challenge handling, backup triggers, and mobility.

    A host knows one or more i3 servers (its gateways, Sec. II-C); that is
    all it needs.  Its three core operations are
    [insert_trigger], [remove_trigger] and [send] — everything else
    (multicast, anycast, mobility, service composition) is built from
    these by the {!I3apps} layer. *)

type config = {
  refresh_period : float;
      (** ms between trigger refreshes; paper/prototype: 30 000 *)
  cache_ttl : float;
      (** how long a learned prefix->server mapping is trusted *)
  ack_grace : float;
      (** re-home to the next gateway if a trigger goes unacknowledged this
          long (server failure recovery, Sec. IV-C) *)
}

val default_config : config

type t

val create :
  engine:Sim.Engine.t ->
  net:Message.t Net.t ->
  rng:Rng.t ->
  site:int ->
  gateways:Packet.addr list ->
  ?config:config ->
  ?tracer:Obs.Trace.t ->
  ?spans:Obs.Span.t ->
  unit ->
  t
(** Attach a host at a topology site. @raise Invalid_argument with no
    gateways.  With a [tracer] (default {!Obs.Trace.disabled}) every sent
    packet gets a trace id (subject to the tracer's sampling) and every
    delivery records the terminal [Deliver] event.

    With a [spans] collector (default {!Obs.Span.disabled}) the host
    emits control-plane spans: one [i3.trigger_insert] /
    [i3.trigger_refresh] per insert round-trip (closed by the server's
    ack, or [Timeout] at the next refresh round; challenges and gateway
    rotations annotated), and one [i3.first_packet] per gateway detour
    toward an uncached prefix, linked to the provoking packet's
    data-plane trace id and closed when the responsible server's address
    lands in the sender cache. *)

val addr : t -> Packet.addr
val site : t -> int
val engine : t -> Sim.Engine.t
(** The virtual clock this host lives on (for application-level timers). *)

val on_receive : t -> (stack:Packet.stack -> payload:string -> unit) -> unit
(** Application downcall for delivered packets; receives the rest of the
    identifier stack (service composition reads it, Sec. III-A). *)

(** {1 Triggers} *)

val insert_trigger : t -> Id.t -> unit
(** Insert [(id, [Saddr self])] and keep it refreshed until removed. *)

val insert_stack_trigger : t -> Id.t -> Packet.stack -> unit
(** Insert [(id, stack)] — the generalized trigger of Sec. II-E. *)

val insert_trigger_with_backup : t -> Id.t -> Id.t
(** Insert the primary trigger and a backup at [Id.antipode id] (stored on
    a different server w.h.p., Sec. IV-C); returns the backup id. *)

val remove_trigger : t -> Id.t -> unit
(** Remove (and stop refreshing) every binding this host owns for [id]. *)

val active_triggers : t -> Trigger.t list

val refresh_now : t -> unit
(** Force an immediate refresh round (tests / explicit recovery). *)

(** {1 Sending} *)

val send : t -> ?refresh:bool -> Id.t -> string -> unit
(** Send [(id, data)]. The first packet toward an uncached prefix travels
    via a gateway with the refreshing flag set; once the responsible
    server's [Cache_info] arrives, packets go to it directly over a single
    overlay hop (Sec. IV-E). *)

val send_stack :
  t -> ?match_required:bool -> Packet.stack -> string -> unit
(** Send with an explicit identifier stack (source-route style,
    Sec. II-E). *)

val send_with_backup : t -> primary:Id.t -> backup:Id.t -> string -> unit
(** Send [(\[primary; backup\], data)]: if the primary's server died, the
    packet falls through to the backup trigger (Sec. IV-C). *)

(** {1 Mobility} *)

val move : t -> new_site:int -> unit
(** Acquire a new address at [new_site] and immediately re-insert all
    triggers pointing at the new address; senders are oblivious
    (Sec. II-D1). The old address stops receiving. *)

(** {1 Introspection} *)

val cached_server_for : t -> Id.t -> Packet.addr option
(** Current cache entry for an identifier's prefix, if fresh. *)

val cache_size : t -> int
val gateway : t -> Packet.addr
(** Current gateway (rotates on persistent ack loss). *)

val new_private_id : t -> Id.t
(** A fresh random identifier for a private trigger (Sec. IV-B). *)
