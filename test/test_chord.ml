(* Tests for lib/chord: ring predicates, finger tables, the static oracle,
   routing policies and the dynamic protocol. *)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let gen_id =
  QCheck2.Gen.(
    map
      (fun seed ->
        let r = Rng.create (Int64.of_int seed) in
        Id.random r)
      int)

(* --- Ring --- *)

let i = Id.of_int

let test_between_no_wrap () =
  Alcotest.(check bool) "5 in (1,9)" true (Chord.Ring.between_oo ~low:(i 1) ~high:(i 9) (i 5));
  Alcotest.(check bool) "1 not in (1,9)" false
    (Chord.Ring.between_oo ~low:(i 1) ~high:(i 9) (i 1));
  Alcotest.(check bool) "9 not in (1,9)" false
    (Chord.Ring.between_oo ~low:(i 1) ~high:(i 9) (i 9));
  Alcotest.(check bool) "9 in (1,9]" true
    (Chord.Ring.between_oc ~low:(i 1) ~high:(i 9) (i 9));
  Alcotest.(check bool) "1 in [1,9)" true
    (Chord.Ring.between_co ~low:(i 1) ~high:(i 9) (i 1))

let test_between_wrap () =
  (* interval (250, 3) wrapping through zero *)
  let low = i 250 and high = i 3 in
  Alcotest.(check bool) "255 wraps in" true (Chord.Ring.between_oo ~low ~high (i 255));
  Alcotest.(check bool) "0 wraps in" true (Chord.Ring.between_oo ~low ~high Id.zero);
  Alcotest.(check bool) "100 out" false (Chord.Ring.between_oo ~low ~high (i 100));
  Alcotest.(check bool) "max wraps in" true
    (Chord.Ring.between_oo ~low ~high Id.max_value)

let test_between_degenerate () =
  (* single-node ring: (a, a] is the whole circle *)
  let a = i 42 in
  Alcotest.(check bool) "anything in (a,a]" true
    (Chord.Ring.between_oc ~low:a ~high:a (i 7));
  Alcotest.(check bool) "a itself in (a,a]" true
    (Chord.Ring.between_oc ~low:a ~high:a a);
  Alcotest.(check bool) "a not in (a,a)" false
    (Chord.Ring.between_oo ~low:a ~high:a a);
  Alcotest.(check bool) "others in (a,a)" true
    (Chord.Ring.between_oo ~low:a ~high:a (i 7))

let test_between_oc_partition =
  qtest "x is in exactly one of (a,b] and (b,a]"
    QCheck2.Gen.(triple gen_id gen_id gen_id)
    (fun (a, b, x) ->
      Id.equal a b
      || Bool.not
           (Chord.Ring.between_oc ~low:a ~high:b x
           = Chord.Ring.between_oc ~low:b ~high:a x))

(* --- Finger_table --- *)

let peer id addr = { Chord.Finger_table.id; addr }

let test_ft_targets () =
  let ft = Chord.Finger_table.create ~self:Id.zero in
  Alcotest.(check bool) "target 0 = 1" true
    (Id.equal (Chord.Finger_table.target ft 0) (i 1));
  Alcotest.(check bool) "target 8 = 256" true
    (Id.equal (Chord.Finger_table.target ft 8) (i 256));
  Alcotest.(check int) "slots" 256 (Chord.Finger_table.slots ft)

let test_ft_closest_preceding () =
  let ft = Chord.Finger_table.create ~self:(i 0) in
  Chord.Finger_table.set ft 3 (Some (peer (i 10) 1));
  Chord.Finger_table.set ft 5 (Some (peer (i 40) 2));
  Chord.Finger_table.set ft 6 (Some (peer (i 70) 3));
  (match Chord.Finger_table.closest_preceding ft (i 50) with
  | Some p -> Alcotest.(check int) "picks 40" 2 p.Chord.Finger_table.addr
  | None -> Alcotest.fail "expected a finger");
  (match Chord.Finger_table.closest_preceding ft (i 5) with
  | Some _ -> Alcotest.fail "nothing precedes 5"
  | None -> ());
  (* extras participate *)
  match
    Chord.Finger_table.closest_preceding ft ~extra:[ peer (i 45) 9 ] (i 50)
  with
  | Some p -> Alcotest.(check int) "extra wins" 9 p.Chord.Finger_table.addr
  | None -> Alcotest.fail "expected extra"

let test_ft_fill_and_known_peers () =
  let rng = Rng.create 77L in
  let oracle = Chord.Oracle.random rng ~n:32 in
  let self = Chord.Oracle.id oracle 0 in
  let ft = Chord.Finger_table.create ~self in
  Chord.Finger_table.fill_from ft (fun key ->
      let idx = Chord.Oracle.successor_index oracle key in
      peer (Chord.Oracle.id oracle idx) idx);
  let peers = Chord.Finger_table.known_peers ft in
  Alcotest.(check bool) "about log n distinct" true
    (List.length peers >= 4 && List.length peers <= 32);
  (* first known peer must be the ring successor *)
  match peers with
  | first :: _ ->
      Alcotest.(check int) "successor first" 1 first.Chord.Finger_table.addr
  | [] -> Alcotest.fail "no peers"

let test_ft_matches_bruteforce =
  qtest ~count:100 "closest_preceding = brute force" QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let self = Id.random rng in
      let ft = Chord.Finger_table.create ~self in
      let peers =
        List.init 20 (fun j ->
            let p = peer (Id.random rng) j in
            Chord.Finger_table.set ft (Rng.int rng 256) (Some p);
            p)
      in
      ignore peers;
      let key = Id.random rng in
      (* brute force over the actual table contents (later sets may have
         overwritten earlier slots) *)
      let stored = ref [] in
      for s = 0 to 255 do
        match Chord.Finger_table.get ft s with
        | Some p -> stored := p :: !stored
        | None -> ()
      done;
      let expected =
        List.fold_left
          (fun best p ->
            if Chord.Ring.between_oo ~low:self ~high:key p.Chord.Finger_table.id
            then
              match best with
              | None -> Some p
              | Some b ->
                  if
                    Chord.Ring.between_oo ~low:b.Chord.Finger_table.id
                      ~high:key p.Chord.Finger_table.id
                  then Some p
                  else best
            else best)
          None !stored
      in
      let got = Chord.Finger_table.closest_preceding ft key in
      match (got, expected) with
      | None, None -> true
      | Some g, Some e -> Id.equal g.Chord.Finger_table.id e.Chord.Finger_table.id
      | _ -> false)

(* --- Oracle --- *)

let test_oracle_sorted_dedup () =
  let o = Chord.Oracle.create [| i 5; i 1; i 5; i 9 |] in
  Alcotest.(check int) "dedup" 3 (Chord.Oracle.size o);
  Alcotest.(check bool) "sorted" true (Id.equal (Chord.Oracle.id o 0) (i 1))

let test_oracle_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Oracle.create: empty ring")
    (fun () -> ignore (Chord.Oracle.create [||]))

let test_oracle_successor () =
  let o = Chord.Oracle.create [| i 10; i 20; i 30 |] in
  let s k = Chord.Oracle.successor_index o (i k) in
  Alcotest.(check int) "succ 5" 0 (s 5);
  Alcotest.(check int) "succ 10 inclusive" 0 (s 10);
  Alcotest.(check int) "succ 11" 1 (s 11);
  Alcotest.(check int) "succ 30" 2 (s 30);
  Alcotest.(check int) "succ 31 wraps" 0 (s 31)

let test_oracle_successor_bruteforce =
  qtest ~count:100 "successor = brute force" QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let ids = Array.init 50 (fun _ -> Id.random rng) in
      let o = Chord.Oracle.create ids in
      let key = Id.random rng in
      let got = Chord.Oracle.id o (Chord.Oracle.successor_index o key) in
      (* brute force: smallest id >= key, else global smallest *)
      let sorted = Array.init (Chord.Oracle.size o) (Chord.Oracle.id o) in
      let expected =
        match Array.to_list sorted |> List.find_opt (fun x -> Id.compare x key >= 0) with
        | Some x -> x
        | None -> sorted.(0)
      in
      Id.equal got expected)

let test_oracle_random_server_ids () =
  let o = Chord.Oracle.random (Rng.create 5L) ~n:64 in
  Alcotest.(check int) "size" 64 (Chord.Oracle.size o);
  for j = 0 to 63 do
    Alcotest.(check bool) "low k bits zero" true (Id.is_server_id (Chord.Oracle.id o j))
  done

let test_oracle_prefix_locality =
  qtest ~count:100 "ids sharing a k-prefix share a server"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let o = Chord.Oracle.random rng ~n:128 in
      let a = Id.random rng in
      let b = Id.random_with_prefix rng a in
      Chord.Oracle.responsible o a = Chord.Oracle.responsible o b)

let test_oracle_neighbors () =
  let o = Chord.Oracle.create [| i 10; i 20; i 30 |] in
  Alcotest.(check int) "succ of last wraps" 0 (Chord.Oracle.successor_of o 2);
  Alcotest.(check int) "pred of first wraps" 2 (Chord.Oracle.predecessor_of o 0);
  Alcotest.(check int) "nth" 1 (Chord.Oracle.nth_successor o 2 2)

let test_oracle_index_of () =
  let o = Chord.Oracle.create [| i 10; i 20 |] in
  Alcotest.(check (option int)) "found" (Some 1) (Chord.Oracle.index_of o (i 20));
  Alcotest.(check (option int)) "absent" None (Chord.Oracle.index_of o (i 15))

(* --- Routing --- *)

let mk_world ?(n = 256) seed =
  let rng = Rng.create (Int64.of_int seed) in
  let oracle = Chord.Oracle.random rng ~n in
  (* synthetic coordinates for a latency function *)
  let coords = Array.init n (fun _ -> (Rng.float rng 100., Rng.float rng 100.)) in
  let lat a b =
    let xa, ya = coords.(a) and xb, yb = coords.(b) in
    Float.max 1. (Float.abs (xa -. xb) +. Float.abs (ya -. yb))
  in
  (rng, oracle, lat)

let policies oracle lat =
  [
    Chord.Routing.create oracle Chord.Routing.Default;
    Chord.Routing.create oracle ~latency:lat
      (Chord.Routing.Closest_finger_replica { replicas = 10 });
    Chord.Routing.create oracle ~latency:lat
      (Chord.Routing.Closest_finger_set { gamma = 11 });
    Chord.Routing.create oracle ~latency:lat
      (Chord.Routing.Prefix_pns { digit_bits = 4; scan = 16 });
  ]

let test_routing_reaches_target () =
  let rng, oracle, lat = mk_world 3 in
  List.iter
    (fun router ->
      for _ = 1 to 100 do
        let key = Id.random rng in
        let start = Rng.int rng (Chord.Oracle.size oracle) in
        let path = Chord.Routing.route router ~start ~key in
        Alcotest.(check int) "ends at successor"
          (Chord.Oracle.successor_index oracle key)
          (List.nth path (List.length path - 1));
        Alcotest.(check int) "starts at start" start (List.hd path)
      done)
    (policies oracle lat)

let test_routing_loop_free () =
  let rng, oracle, lat = mk_world 7 in
  List.iter
    (fun router ->
      for _ = 1 to 50 do
        let key = Id.random rng in
        let start = Rng.int rng (Chord.Oracle.size oracle) in
        let path = Chord.Routing.route router ~start ~key in
        let uniq = List.sort_uniq compare path in
        Alcotest.(check int) "no repeats" (List.length path) (List.length uniq)
      done)
    (policies oracle lat)

let test_routing_log_hops () =
  let rng, oracle, _ = mk_world ~n:1024 11 in
  let router = Chord.Routing.create oracle Chord.Routing.Default in
  let worst = ref 0 in
  for _ = 1 to 300 do
    let key = Id.random rng in
    let start = Rng.int rng 1024 in
    let path = Chord.Routing.route router ~start ~key in
    worst := max !worst (List.length path - 1)
  done;
  (* log2 1024 = 10; default Chord takes at most ~log2 n hops *)
  Alcotest.(check bool) (Printf.sprintf "worst %d <= 14" !worst) true (!worst <= 14)

let test_routing_next_hop_consistent () =
  let rng, oracle, _ = mk_world 13 in
  let router = Chord.Routing.create oracle Chord.Routing.Default in
  for _ = 1 to 100 do
    let key = Id.random rng in
    let start = Rng.int rng (Chord.Oracle.size oracle) in
    let path = Chord.Routing.route router ~start ~key in
    (* walking next_hop reproduces the path *)
    let rec walk current acc =
      match Chord.Routing.next_hop router ~current ~key with
      | None -> List.rev (current :: acc)
      | Some n -> walk n (current :: acc)
    in
    Alcotest.(check (list int)) "next_hop = route" path (walk start [])
  done

let test_routing_self_responsible () =
  let _, oracle, _ = mk_world 17 in
  let router = Chord.Routing.create oracle Chord.Routing.Default in
  let idx = 5 in
  let key = Chord.Oracle.id oracle idx in
  Alcotest.(check (option int)) "no hop needed" None
    (Chord.Routing.next_hop router ~current:idx ~key);
  Alcotest.(check (list int)) "trivial path" [ idx ]
    (Chord.Routing.route router ~start:idx ~key)

let test_routing_policy_needs_latency () =
  let _, oracle, _ = mk_world 19 in
  Alcotest.check_raises "missing latency"
    (Invalid_argument "Routing.create: heuristic policies need a latency function")
    (fun () ->
      ignore
        (Chord.Routing.create oracle
           (Chord.Routing.Closest_finger_set { gamma = 11 })))

let test_routing_heuristics_cut_latency () =
  let rng, oracle, lat = mk_world ~n:512 23 in
  let measure router =
    let r = Rng.copy rng in
    let total = ref 0. in
    for _ = 1 to 200 do
      let key = Id.random r in
      let start = Rng.int r 512 in
      let path = Chord.Routing.route router ~start ~key in
      total := !total +. Chord.Routing.path_latency lat path
    done;
    !total
  in
  match policies oracle lat with
  | [ default; replica; fset; prefix ] ->
      let d = measure default
      and r = measure replica
      and f = measure fset
      and p = measure prefix in
      Alcotest.(check bool) "replica cheaper than default" true (r < d);
      Alcotest.(check bool) "finger-set cheaper than default" true (f < d);
      Alcotest.(check bool) "prefix-pns cheaper than default" true (p < d)
  | _ -> assert false

let test_routing_path_latency () =
  let lat a b = float_of_int (abs (a - b)) in
  Alcotest.(check (float 1e-9)) "sum" 4. (Chord.Routing.path_latency lat [ 0; 3; 4 ]);
  Alcotest.(check (float 1e-9)) "singleton" 0. (Chord.Routing.path_latency lat [ 9 ])

let test_routing_candidate_counts () =
  let _, oracle, lat = mk_world ~n:512 29 in
  let fset =
    Chord.Routing.create oracle ~latency:lat
      (Chord.Routing.Closest_finger_set { gamma = 11 })
  in
  (* per-octave selection keeps about log2 n distinct fingers *)
  let c = Chord.Routing.candidate_count fset 0 in
  Alcotest.(check bool) (Printf.sprintf "kept %d in [5, 30]" c) true
    (c >= 5 && c <= 30)

(* --- Protocol --- *)

let mk_proto ?(latency = fun _ _ -> 10.) ?(seed = 1) () =
  let engine = Engine.create () in
  let rng = Rng.create (Int64.of_int seed) in
  (* private registry: parallel test binaries must not share
     Obs.Metrics.default *)
  let nw =
    Chord.Protocol.create engine ~rng ~latency
      ~metrics:(Obs.Metrics.create ()) ()
  in
  (engine, rng, nw)

let grow_ring engine rng nw n =
  let b = Chord.Protocol.bootstrap nw ~site:0 () in
  let nodes = ref [| b |] in
  for _ = 2 to n do
    let via = Rng.choose rng !nodes in
    let node = Chord.Protocol.join nw ~site:0 ~via () in
    nodes := Array.append !nodes [| node |];
    Engine.run_for engine 2_000.
  done;
  Engine.run_for engine 400_000.;
  !nodes

let test_protocol_singleton () =
  let engine, _, nw = mk_proto () in
  let b = Chord.Protocol.bootstrap nw ~site:0 () in
  Engine.run_for engine 100_000.;
  Alcotest.(check bool) "alone is consistent" true (Chord.Protocol.ring_consistent nw);
  let got = ref None in
  Chord.Protocol.lookup b (Id.of_int 42) (fun r -> got := r);
  Engine.run_for engine 10_000.;
  match !got with
  | Some p ->
      Alcotest.(check bool) "self owns everything" true
        (Id.equal p.Chord.Protocol.id (Chord.Protocol.node_id b))
  | None -> Alcotest.fail "lookup failed"

let test_protocol_two_nodes () =
  let engine, _, nw = mk_proto () in
  let a = Chord.Protocol.bootstrap nw ~site:0 () in
  let b = Chord.Protocol.join nw ~site:1 ~via:a () in
  Engine.run_for engine 200_000.;
  Alcotest.(check bool) "two-node ring" true (Chord.Protocol.ring_consistent nw);
  (match Chord.Protocol.successor a with
  | Some p -> Alcotest.(check bool) "a -> b" true (Id.equal p.Chord.Protocol.id (Chord.Protocol.node_id b))
  | None -> Alcotest.fail "a has no successor");
  match Chord.Protocol.predecessor a with
  | Some p -> Alcotest.(check bool) "pred a = b" true (Id.equal p.Chord.Protocol.id (Chord.Protocol.node_id b))
  | None -> Alcotest.fail "a has no predecessor"

let test_protocol_convergence () =
  let engine, rng, nw = mk_proto ~seed:2 () in
  let _ = grow_ring engine rng nw 24 in
  Alcotest.(check bool) "ring consistent" true (Chord.Protocol.ring_consistent nw)

let test_protocol_lookup_correct () =
  let engine, rng, nw = mk_proto ~seed:3 () in
  let nodes = grow_ring engine rng nw 16 in
  let ok = ref 0 in
  let total = 100 in
  for _ = 1 to total do
    let key = Id.random rng in
    let origin = Rng.choose rng nodes in
    let expected = Chord.Protocol.expected_successor nw key in
    Chord.Protocol.lookup origin key (fun res ->
        match (res, expected) with
        | Some p, Some e
          when Id.equal p.Chord.Protocol.id (Chord.Protocol.node_id e) ->
            incr ok
        | _ -> ())
  done;
  Engine.run_for engine 60_000.;
  Alcotest.(check int) "all lookups correct" total !ok

let test_protocol_heals_after_failures () =
  let engine, rng, nw = mk_proto ~seed:4 () in
  let nodes = grow_ring engine rng nw 20 in
  Array.iteri (fun idx n -> if idx mod 4 = 0 then Chord.Protocol.kill n) nodes;
  Engine.run_for engine 600_000.;
  Alcotest.(check bool) "ring healed" true (Chord.Protocol.ring_consistent nw);
  Alcotest.(check int) "alive count" 15 (List.length (Chord.Protocol.alive_nodes nw))

let test_protocol_lookup_after_failures () =
  let engine, rng, nw = mk_proto ~seed:5 () in
  let nodes = grow_ring engine rng nw 16 in
  Chord.Protocol.kill nodes.(3);
  Chord.Protocol.kill nodes.(9);
  Engine.run_for engine 600_000.;
  let alive = Chord.Protocol.alive_nodes nw in
  let origin = List.hd alive in
  let ok = ref 0 in
  for s = 1 to 50 do
    let key = Id.random (Rng.create (Int64.of_int s)) in
    let expected = Chord.Protocol.expected_successor nw key in
    Chord.Protocol.lookup origin key (fun res ->
        match (res, expected) with
        | Some p, Some e
          when Id.equal p.Chord.Protocol.id (Chord.Protocol.node_id e) ->
            incr ok
        | _ -> ())
  done;
  Engine.run_for engine 60_000.;
  Alcotest.(check bool) (Printf.sprintf "%d/50 correct" !ok) true (!ok >= 48)

let test_protocol_survives_loss () =
  let engine, rng, nw = mk_proto ~seed:6 () in
  (* 10% message loss from the very start; the soft-state protocol must
     still converge because every exchange is periodically retried. *)
  Chord.Protocol.set_loss_rate nw 0.1;
  let b = Chord.Protocol.bootstrap nw ~site:0 () in
  let nodes = ref [| b |] in
  for _ = 2 to 12 do
    let via = Rng.choose rng !nodes in
    let node = Chord.Protocol.join nw ~site:0 ~via () in
    nodes := Array.append !nodes [| node |];
    Engine.run_for engine 20_000.
  done;
  Engine.run_for engine 1_500_000.;
  Alcotest.(check bool) "consistent under loss" true
    (Chord.Protocol.ring_consistent nw)

let test_protocol_churn () =
  (* Interleaved joins and failures over ~40 virtual minutes. *)
  let engine, rng, nw = mk_proto ~seed:8 () in
  let b = Chord.Protocol.bootstrap nw ~site:0 () in
  let nodes = ref [ b ] in
  for round = 1 to 12 do
    let via =
      match List.filter Chord.Protocol.is_alive !nodes with
      | [] -> b
      | alive -> Rng.choose rng (Array.of_list alive)
    in
    nodes := Chord.Protocol.join nw ~site:0 ~via () :: !nodes;
    if round mod 3 = 0 then begin
      match List.filter Chord.Protocol.is_alive !nodes with
      | _ :: _ :: _ :: victim :: _ -> Chord.Protocol.kill victim
      | _ -> ()
    end;
    Engine.run_for engine 60_000.
  done;
  Engine.run_for engine 1_800_000.;
  Alcotest.(check bool) "ring consistent after churn" true
    (Chord.Protocol.ring_consistent nw);
  (* and lookups agree with ground truth *)
  let alive = Chord.Protocol.alive_nodes nw in
  let origin = List.hd alive in
  let ok = ref 0 in
  for s = 1 to 30 do
    let key = Id.random (Rng.create (Int64.of_int (1000 + s))) in
    let expected = Chord.Protocol.expected_successor nw key in
    Chord.Protocol.lookup origin key (fun res ->
        match (res, expected) with
        | Some p, Some e
          when Id.equal p.Chord.Protocol.id (Chord.Protocol.node_id e) ->
            incr ok
        | _ -> ())
  done;
  Engine.run_for engine 60_000.;
  Alcotest.(check bool) (Printf.sprintf "%d/30 lookups" !ok) true (!ok >= 29)

let test_protocol_concurrent_joins () =
  let engine, _, nw = mk_proto ~seed:7 () in
  let b = Chord.Protocol.bootstrap nw ~site:0 () in
  (* all join through the bootstrap at the same instant *)
  let _nodes = List.init 10 (fun i -> Chord.Protocol.join nw ~site:i ~via:b ()) in
  Engine.run_for engine 900_000.;
  Alcotest.(check bool) "concurrent joins converge" true
    (Chord.Protocol.ring_consistent nw)

let () =
  Alcotest.run "chord"
    [
      ( "ring",
        [
          Alcotest.test_case "no wrap" `Quick test_between_no_wrap;
          Alcotest.test_case "wraparound" `Quick test_between_wrap;
          Alcotest.test_case "degenerate" `Quick test_between_degenerate;
          test_between_oc_partition;
        ] );
      ( "finger table",
        [
          Alcotest.test_case "targets" `Quick test_ft_targets;
          Alcotest.test_case "closest preceding" `Quick test_ft_closest_preceding;
          Alcotest.test_case "fill + known peers" `Quick test_ft_fill_and_known_peers;
          test_ft_matches_bruteforce;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "sorted dedup" `Quick test_oracle_sorted_dedup;
          Alcotest.test_case "empty rejected" `Quick test_oracle_empty;
          Alcotest.test_case "successor cases" `Quick test_oracle_successor;
          test_oracle_successor_bruteforce;
          Alcotest.test_case "random server ids" `Quick test_oracle_random_server_ids;
          test_oracle_prefix_locality;
          Alcotest.test_case "ring neighbors" `Quick test_oracle_neighbors;
          Alcotest.test_case "index_of" `Quick test_oracle_index_of;
        ] );
      ( "routing",
        [
          Alcotest.test_case "reaches target (all policies)" `Quick test_routing_reaches_target;
          Alcotest.test_case "loop free (all policies)" `Quick test_routing_loop_free;
          Alcotest.test_case "O(log n) hops" `Quick test_routing_log_hops;
          Alcotest.test_case "next_hop consistent" `Quick test_routing_next_hop_consistent;
          Alcotest.test_case "self responsible" `Quick test_routing_self_responsible;
          Alcotest.test_case "latency required" `Quick test_routing_policy_needs_latency;
          Alcotest.test_case "heuristics cut latency" `Quick test_routing_heuristics_cut_latency;
          Alcotest.test_case "path latency" `Quick test_routing_path_latency;
          Alcotest.test_case "candidate counts" `Quick test_routing_candidate_counts;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "singleton" `Quick test_protocol_singleton;
          Alcotest.test_case "two nodes" `Quick test_protocol_two_nodes;
          Alcotest.test_case "convergence" `Slow test_protocol_convergence;
          Alcotest.test_case "lookups correct" `Slow test_protocol_lookup_correct;
          Alcotest.test_case "heals after failures" `Slow test_protocol_heals_after_failures;
          Alcotest.test_case "lookup after failures" `Slow test_protocol_lookup_after_failures;
          Alcotest.test_case "converges under loss" `Slow test_protocol_survives_loss;
          Alcotest.test_case "concurrent joins" `Slow test_protocol_concurrent_joins;
          Alcotest.test_case "join/leave churn" `Slow test_protocol_churn;
        ] );
    ]
