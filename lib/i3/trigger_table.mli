(** Per-server trigger storage with the paper's inexact matching rule.

    Matching (Sec. II-B): a trigger id [t] matches a packet id [p] iff
    (1) they share at least k = 128 leading bits and (2) no stored trigger
    has a longer prefix match with [p].  Because all identifiers sharing a
    k-bit prefix live on the same server (Sec. IV-A), the longest-prefix
    search is local: the table is a compressed binary (Patricia) trie over
    the full 256-bit identifiers, so insert, remove and longest-prefix
    match are O(key length) with no per-bucket list walks — sized for 10^6
    resident triggers.  All triggers with the *winning identifier* match
    (one trie leaf holds the whole group) — that is what makes multicast
    "many triggers with the same id" (Sec. II-D2) work with no special
    casing.

    Entries are soft state with absolute expiry timestamps (virtual-time
    ms); refreshing re-inserts the same binding with a later deadline.
    Expiry is lazy: deadlines sit in a min-heap with per-entry generation
    counters, so [expire] touches only due entries instead of sweeping the
    whole table. *)

type t

val create : unit -> t

val clear : t -> unit
(** Drop every binding (a restarting server's soft state dies with it). *)

val insert : t -> now:float -> expires:float -> Trigger.t -> unit
(** Insert or refresh a binding. If an entry with the same id, stack and
    owner exists, only its expiry is extended.  Total: an already-expired
    deadline ([expires <= now], or NaN from a hostile wire lifetime) is
    silently dropped — replica and cache re-insert paths race the clock
    and must never crash the engine step. *)

val remove : t -> Trigger.t -> bool
(** Remove an exact binding; [false] if absent. *)

val remove_matching : t -> id:Id.t -> target:Id.t -> int
(** Remove every trigger with identifier [id] whose stack head is
    [Sid target]: the pushback primitive (Sec. IV-J2). Returns the number
    removed. *)

val find_matches : t -> now:float -> Id.t -> Trigger.t list
(** Longest-prefix matching: all live triggers holding the winning
    identifier (ties on prefix length broken toward the smaller id, for
    determinism), or [] if nothing reaches the k-bit threshold. *)

val bucket_of : t -> now:float -> Id.t -> Trigger.t list
(** All live triggers sharing the k-bit prefix of the given id — the unit
    pushed to a neighbor when a trigger becomes hot, because caching a
    partial bucket could make a cached longest-prefix answer wrong
    (Sec. IV-F). *)

val bucket_entries : t -> now:float -> Id.t -> (Trigger.t * float) list
(** Like {!bucket_of} but paired with each trigger's remaining lifetime in
    ms — the payload of a hot-spot push. *)

val expire : t -> now:float -> int
(** Drop entries past their deadline; returns how many were dropped. *)

val size : t -> int
(** Number of stored bindings, including not-yet-collected expired ones. *)

val iter : t -> (Trigger.t -> expires:float -> unit) -> unit
