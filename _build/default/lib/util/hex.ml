let hex_chars = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let b = Char.code s.[i] in
    Bytes.set out (2 * i) hex_chars.[b lsr 4];
    Bytes.set out ((2 * i) + 1) hex_chars.[b land 0xf]
  done;
  Bytes.to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: non-hex character"

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
