type t = { ids : Id.t array }

let create ids =
  let module S = Set.Make (Id) in
  let set = Array.fold_left (fun acc i -> S.add i acc) S.empty ids in
  if S.is_empty set then invalid_arg "Oracle.create: empty ring";
  { ids = Array.of_list (S.elements set) }

let random rng ~n =
  if n <= 0 then invalid_arg "Oracle.random: n must be positive";
  let tbl = Hashtbl.create (2 * n) in
  while Hashtbl.length tbl < n do
    let id = Id.routing_key (Id.random rng) in
    if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id ()
  done;
  create (Array.of_seq (Hashtbl.to_seq_keys tbl))

let size t = Array.length t.ids
let id t i = t.ids.(i)

(* First index with ids.(i) >= key, or [size] if none. *)
let lower_bound t key =
  let lo = ref 0 and hi = ref (Array.length t.ids) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Id.compare t.ids.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let successor_index t key =
  let i = lower_bound t key in
  if i = Array.length t.ids then 0 else i

let index_of t key =
  let i = lower_bound t key in
  if i < Array.length t.ids && Id.equal t.ids.(i) key then Some i else None

let responsible t i3_id = successor_index t (Id.routing_key i3_id)

let successor_of t i = (i + 1) mod size t
let predecessor_of t i = (i + size t - 1) mod size t
let nth_successor t i k = (i + k) mod size t

let finger t i e = successor_index t (Id.add_pow2 (id t i) e)
let finger_at t i offset = successor_index t (Id.add (id t i) offset)
