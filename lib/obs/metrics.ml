type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = M_counter of counter | M_gauge of gauge | M_histogram of histogram

type key = { k_name : string; k_labels : (string * string) list }

type t = { tbl : (key, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let default = create ()

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let key name labels = { k_name = name; k_labels = canon_labels labels }

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let register reg name labels fresh project =
  let k = key name labels in
  match Hashtbl.find_opt reg.tbl k with
  | Some m -> (
      match project m with
      | Some h -> h
      | None ->
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
               (kind_name m)))
  | None ->
      let h, m = fresh () in
      Hashtbl.replace reg.tbl k m;
      h

let counter reg ?(labels = []) name =
  register reg name labels
    (fun () ->
      let c = { c_value = 0 } in
      (c, M_counter c))
    (function M_counter c -> Some c | _ -> None)

let gauge reg ?(labels = []) name =
  register reg name labels
    (fun () ->
      let g = { g_value = 0. } in
      (g, M_gauge g))
    (function M_gauge g -> Some g | _ -> None)

let check_bounds bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Obs.Metrics.histogram: empty buckets";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Obs.Metrics.histogram: bucket bounds must be strictly increasing"
  done

let histogram reg ?(labels = []) ~buckets name =
  check_bounds buckets;
  register reg name labels
    (fun () ->
      let h =
        {
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          h_count = 0;
          h_sum = 0.;
          h_min = infinity;
          h_max = neg_infinity;
        }
      in
      (h, M_histogram h))
    (function M_histogram h -> Some h | _ -> None)

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value
let set g v = g.g_value <- v
let add g v = g.g_value <- g.g_value +. v
let gauge_value g = g.g_value

let bucket_index bounds v =
  (* first bucket whose upper bound admits v; overflow bucket otherwise *)
  let n = Array.length bounds in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_mean h = if h.h_count = 0 then nan else h.h_sum /. float_of_int h.h_count

let quantile h q =
  (* Pinned: an empty histogram has quantile 0 (not nan).  The telemetry
     plane serializes percentiles over the wire and compares decoded
     snapshots structurally; nan would poison both (nan <> nan). *)
  if h.h_count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int h.h_count in
    let nb = Array.length h.bounds in
    let rec find i cum =
      if i > nb then nb
      else
        let cum' = cum + h.counts.(i) in
        if float_of_int cum' >= rank && h.counts.(i) > 0 then i
        else find (i + 1) cum'
    in
    let i = find 0 0 in
    let lower = if i = 0 then h.h_min else h.bounds.(i - 1) in
    let upper = if i >= nb then h.h_max else h.bounds.(i) in
    let cum_before =
      let s = ref 0 in
      for j = 0 to i - 1 do
        s := !s + h.counts.(j)
      done;
      !s
    in
    let in_bucket = h.counts.(i) in
    let frac =
      if in_bucket = 0 then 1.
      else
        Float.max 0.
          (Float.min 1.
             ((rank -. float_of_int cum_before) /. float_of_int in_bucket))
    in
    let est = lower +. (frac *. (upper -. lower)) in
    Float.max h.h_min (Float.min h.h_max est)
  end

let linear_buckets ~start ~width ~count =
  if count <= 0 then invalid_arg "Obs.Metrics.linear_buckets: count must be > 0";
  Array.init count (fun i -> start +. (width *. float_of_int i))

let exponential_buckets ~start ~factor ~count =
  if count <= 0 then
    invalid_arg "Obs.Metrics.exponential_buckets: count must be > 0";
  if start <= 0. || factor <= 1. then
    invalid_arg "Obs.Metrics.exponential_buckets: need start > 0 and factor > 1";
  let b = Array.make count start in
  for i = 1 to count - 1 do
    b.(i) <- b.(i - 1) *. factor
  done;
  b

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      p50 : float;
      p90 : float;
      p99 : float;
      max : float;
    }

type sample = { name : string; labels : (string * string) list; value : value }

let read = function
  | M_counter c -> Counter c.c_value
  | M_gauge g -> Gauge g.g_value
  | M_histogram h ->
      Histogram
        {
          count = h.h_count;
          sum = h.h_sum;
          p50 = quantile h 0.5;
          p90 = quantile h 0.9;
          p99 = quantile h 0.99;
          max = (if h.h_count = 0 then 0. else h.h_max);
        }

let snapshot ?prefix reg =
  let keep k =
    match prefix with
    | None -> true
    | Some p ->
        String.length k.k_name >= String.length p
        && String.sub k.k_name 0 (String.length p) = p
  in
  Hashtbl.fold
    (fun k m acc ->
      if keep k then { name = k.k_name; labels = k.k_labels; value = read m } :: acc
      else acc)
    reg.tbl []
  |> List.sort (fun a b ->
         match compare a.name b.name with
         | 0 -> compare a.labels b.labels
         | c -> c)

let find reg ?(labels = []) name =
  Option.map read (Hashtbl.find_opt reg.tbl (key name labels))

let remove reg ?(labels = []) name = Hashtbl.remove reg.tbl (key name labels)

let remove_where reg pred =
  let doomed =
    Hashtbl.fold
      (fun k _ acc ->
        if pred ~name:k.k_name ~labels:k.k_labels then k :: acc else acc)
      reg.tbl []
  in
  List.iter (Hashtbl.remove reg.tbl) doomed

let reset reg =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> c.c_value <- 0
      | M_gauge g -> g.g_value <- 0.
      | M_histogram h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.h_count <- 0;
          h.h_sum <- 0.;
          h.h_min <- infinity;
          h.h_max <- neg_infinity)
    reg.tbl

let float_short f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

let value_to_string = function
  | Counter c -> string_of_int c
  | Gauge g -> float_short g
  | Histogram { count; p50; p90; p99; _ } ->
      if count = 0 then "n=0"
      else
        Printf.sprintf "n=%d p50=%s p90=%s p99=%s" count (float_short p50)
          (float_short p90) (float_short p99)
