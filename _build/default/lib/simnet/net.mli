(** Best-effort datagram network over the event engine: the "IP layer".

    Endpoints attach at topology *sites*; a message from endpoint [a] to
    endpoint [b] is delivered after [latency site_a site_b] ms of virtual
    time, or silently dropped under the configured loss rate or if either
    endpoint is down — exactly the best-effort, no-ordering, no-reliability
    service i3 assumes of IP (paper Sec. II-A).  Endpoints can move between
    sites (host mobility) and crash/recover (server failure). *)

type addr = int
(** Endpoint address ("IP address + port" of the paper). *)

val pp_addr : Format.formatter -> addr -> unit

type 'msg t
(** A network carrying messages of type ['msg]. *)

val create :
  Engine.t -> rng:Rng.t -> latency:(int -> int -> float) -> unit -> 'msg t
(** [latency] maps a pair of sites to one-way latency in ms. *)

val engine : 'msg t -> Engine.t

val register : 'msg t -> site:int -> (src:addr -> 'msg -> unit) -> addr
(** Attach a new endpoint at a site with a receive handler; returns its
    address. *)

val set_handler : 'msg t -> addr -> (src:addr -> 'msg -> unit) -> unit
val site : 'msg t -> addr -> int

val move : 'msg t -> addr -> int -> unit
(** Re-home an endpoint to another site (mobile host changing subnet).
    Messages already in flight are delivered to the new location — the
    address is the endpoint's identity here; acquiring a genuinely new
    address is modeled by registering a fresh endpoint. *)

val send : 'msg t -> src:addr -> dst:addr -> 'msg -> unit
(** Fire-and-forget datagram. Dropped silently when the source or the
    destination is down at the relevant instant or on random loss. *)

val set_down : 'msg t -> addr -> unit
(** Crash an endpoint: it stops sending and receiving. *)

val set_up : 'msg t -> addr -> unit
val is_up : 'msg t -> addr -> bool

val set_loss_rate : 'msg t -> float -> unit
(** Uniform independent loss probability in [0, 1). Default 0. *)

val set_tap : 'msg t -> (src:addr -> dst:addr -> 'msg -> unit) -> unit
(** Observe every successful delivery (tracing in tests). *)

type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;
  dropped_down : int;
}

val stats : 'msg t -> stats
val endpoint_count : 'msg t -> int
