lib/topology/transit_stub.mli: Graph Rng
