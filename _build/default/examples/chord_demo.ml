(* The self-organizing substrate (paper Secs. IV-C/D): watch a Chord ring
   assemble itself from sequential joins, answer lookups, and heal after a
   quarter of the nodes fail-stop. Run with:
   dune exec examples/chord_demo.exe *)

let () =
  let engine = Engine.create () in
  let rng = Rng.create 99L in
  let nw = Chord.Protocol.create engine ~rng ~latency:(fun _ _ -> 20.) () in

  print_endline "bootstrapping a 24-node ring (joins every 2 s)...";
  let bootstrap = Chord.Protocol.bootstrap nw ~site:0 () in
  let nodes = ref [| bootstrap |] in
  for _ = 2 to 24 do
    let via = Rng.choose rng !nodes in
    nodes := Array.append !nodes [| Chord.Protocol.join nw ~site:0 ~via () |];
    Engine.run_for engine 2_000.
  done;
  Engine.run_for engine 900_000.;
  Printf.printf "t=%.0fs  ring consistent: %b\n"
    (Engine.now engine /. 1000.)
    (Chord.Protocol.ring_consistent nw);

  let correct = ref 0 in
  let total = 50 in
  for _ = 1 to total do
    let key = Id.random rng in
    let origin = Rng.choose rng !nodes in
    let expected = Chord.Protocol.expected_successor nw key in
    Chord.Protocol.lookup origin key (fun res ->
        match (res, expected) with
        | Some p, Some e
          when Id.equal p.Chord.Protocol.id (Chord.Protocol.node_id e) ->
            incr correct
        | _ -> ())
  done;
  Engine.run_for engine 30_000.;
  Printf.printf "lookups answered correctly: %d/%d\n" !correct total;

  print_endline "killing every fourth node...";
  Array.iteri (fun i n -> if i mod 4 = 0 then Chord.Protocol.kill n) !nodes;
  Engine.run_for engine 600_000.;
  Printf.printf "t=%.0fs  ring consistent after failures: %b (%d nodes alive)\n"
    (Engine.now engine /. 1000.)
    (Chord.Protocol.ring_consistent nw)
    (List.length (Chord.Protocol.alive_nodes nw))
