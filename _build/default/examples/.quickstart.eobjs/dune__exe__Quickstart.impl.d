examples/quickstart.ml: I3 Printf
