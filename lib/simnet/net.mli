(** Best-effort datagram network over the event engine: the "IP layer".

    Endpoints attach at topology *sites*; a message from endpoint [a] to
    endpoint [b] is delivered after [latency site_a site_b] ms of virtual
    time, or silently dropped under the configured loss rate or if either
    endpoint is down — exactly the best-effort, no-ordering, no-reliability
    service i3 assumes of IP (paper Sec. II-A).  Endpoints can move between
    sites (host mobility) and crash/recover (server failure).

    Beyond uniform i.i.d. loss, the network carries a composable
    link-level fault model for chaos testing (see {!Faults} for the
    schedule DSL driving it): site-set {e partitions} with heal,
    asymmetric one-way {e gray links}, Gilbert–Elliott {e burst loss},
    message {e duplication}, and latency {e jitter}/fixed spikes.  Every
    drop is counted by cause in {!stats}. *)

type addr = int
(** Endpoint address ("IP address + port" of the paper). *)

val pp_addr : Format.formatter -> addr -> unit

type 'msg t
(** A network carrying messages of type ['msg]. *)

val create :
  ?metrics:Obs.Metrics.t ->
  ?label:string ->
  Engine.t ->
  rng:Rng.t ->
  latency:(int -> int -> float) ->
  unit ->
  'msg t
(** [latency] maps a pair of sites to one-way latency in ms.  Accounting
    registers under [net.*] in [metrics] (default {!Obs.Metrics.default})
    with an [instance] label — [label] if given, else a fresh ["netN"] —
    so independent networks never share counters. *)

val engine : 'msg t -> Engine.t

val label : 'msg t -> string
(** The [instance] label this network's metrics carry. *)

val register : 'msg t -> site:int -> (src:addr -> 'msg -> unit) -> addr
(** Attach a new endpoint at a site with a receive handler; returns its
    address. *)

val set_handler : 'msg t -> addr -> (src:addr -> 'msg -> unit) -> unit
val site : 'msg t -> addr -> int

val move : 'msg t -> addr -> int -> unit
(** Re-home an endpoint to another site (mobile host changing subnet).
    Messages already in flight are delivered to the new location — the
    address is the endpoint's identity here; acquiring a genuinely new
    address is modeled by registering a fresh endpoint. *)

val send : 'msg t -> src:addr -> dst:addr -> 'msg -> unit
(** Fire-and-forget datagram. Dropped silently when the source or the
    destination is down at the relevant instant, when an active partition
    or gray link separates the two sites, or on (burst or uniform) random
    loss. *)

val set_down : 'msg t -> addr -> unit
(** Crash an endpoint: it stops sending and receiving. *)

val set_up : 'msg t -> addr -> unit
val is_up : 'msg t -> addr -> bool

val set_loss_rate : 'msg t -> float -> unit
(** Uniform independent loss probability in [0, 1]. Default 0.
    [1.] is a total blackhole (every message dropped). *)

val set_tap : 'msg t -> (src:addr -> dst:addr -> 'msg -> unit) -> unit
(** Observe every successful delivery (tracing in tests). *)

type outcome = [ `Enqueue | `Drop of string ]
(** Fate decided by the network for one {!send}: accepted for
    transmission, or dropped with a cause (["loss"], ["burst"], ["down"],
    ["partition"], ["gray"]).  A message enqueued while its destination is
    up can still die in flight if the destination goes down before
    delivery — that surfaces as a second callback with [`Drop "down"] at
    delivery time. *)

val set_observer : 'msg t -> (src:addr -> dst:addr -> 'msg -> outcome -> unit) -> unit
(** Observe the fate of every message as the network decides it.  This is
    the hook {!Obs.Trace} integrations attach to: the network itself is
    payload-agnostic, so the observer (which can inspect ['msg]) turns
    outcomes into trace events. *)

val set_transducer : 'msg t -> ('msg -> ('msg, string) result) -> unit
(** Pass every sent message through a transform before any fault or
    latency processing; the {e transformed} value is what gets delivered.
    [Error] drops the message with cause ["codec"].  This is how the wire
    codecs interpose on simulated traffic: the transducer encodes to
    bytes and decodes back, so every hop of every existing test exercises
    the real wire format and any drift surfaces as a ["codec"] drop (see
    [I3.Codec.harden]).  The transducer draws no network randomness, so
    seeded runs replay identically with or without one. *)

(** {1 Link-level faults}

    All fault knobs compose: a message must survive the partition check,
    the gray-link check, the burst-loss chain and the uniform loss draw —
    in that order — to be delivered.  Latency effects apply only to
    messages that survive. *)

type partition_id

val partition : 'msg t -> int list -> partition_id
(** [partition t sites] cuts the given site set off from every other
    site, in both directions, until healed.  Multiple partitions may be
    active at once; a message crossing {e any} active cut is dropped.
    Traffic within the set (and within the complement) is unaffected.
    @raise Invalid_argument on an empty site list. *)

val heal : 'msg t -> partition_id -> unit
(** Remove one partition; idempotent. *)

val heal_all : 'msg t -> unit
(** Remove every active partition. *)

val set_link_down : 'msg t -> src_site:int -> dst_site:int -> unit
(** Gray failure: silently drop every message from [src_site] to
    [dst_site].  One-way — the reverse direction still works, which is
    what makes gray links nastier than clean partitions: timeouts fire on
    one side only. *)

val set_link_up : 'msg t -> src_site:int -> dst_site:int -> unit

val set_burst_loss :
  'msg t ->
  ?loss_good:float ->
  ?loss_bad:float ->
  p_enter:float ->
  p_exit:float ->
  unit ->
  unit
(** Install a Gilbert–Elliott two-state loss chain: each message advances
    the chain (Good -> Bad with probability [p_enter], Bad -> Good with
    [p_exit]) and is then dropped with probability [loss_good] (default 0)
    or [loss_bad] (default 1) depending on the state.  Mean burst length
    is [1 /. p_exit] messages.  Replaces any previous chain; composes with
    the uniform {!set_loss_rate}. *)

val clear_burst_loss : 'msg t -> unit

val set_duplicate_rate : 'msg t -> float -> unit
(** With the given probability a delivered message is delivered twice
    (the copy draws its own jitter).  Default 0. *)

val set_jitter : 'msg t -> float -> unit
(** Add Uniform[0, ms) to every delivery latency. Default 0. *)

val set_extra_latency : 'msg t -> float -> unit
(** Fixed latency spike added to every delivery (congestion episode).
    Default 0. *)

(** {1 Accounting}

    All counters live in the {!Obs.Metrics} registry passed at creation
    (names [net.sent], [net.delivered], [net.duplicated], [net.dropped]
    with a [cause] label, each carrying this network's [instance] label);
    {!snapshot} via [Obs.Metrics.snapshot] is the uniform read API.  The
    [stats] record below is a thin per-instance view kept so existing
    callers and tests read unchanged. *)

type stats = {
  sent : int;
  delivered : int;
  duplicated : int;  (** extra copies delivered by {!set_duplicate_rate} *)
  dropped_loss : int;  (** uniform i.i.d. loss *)
  dropped_burst : int;  (** Gilbert–Elliott chain in the Bad state *)
  dropped_down : int;  (** sender or receiver endpoint down *)
  dropped_partition : int;  (** crossing an active partition cut *)
  dropped_gray : int;  (** one-way gray link *)
  dropped_codec : int;  (** {!set_transducer} returned [Error] *)
}

val stats : 'msg t -> stats
val endpoint_count : 'msg t -> int
