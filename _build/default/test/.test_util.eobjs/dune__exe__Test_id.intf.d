test/test_id.mli:
