lib/i3apps/reliable.mli: I3 Id Rng
