lib/i3/message.ml: Format Id List Net Packet String Trigger
