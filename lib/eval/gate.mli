(** Perf-regression gate: diff a fresh [BENCH_i3.json] against a
    checked-in baseline with per-metric tolerances.

    Each {!check} names a dotted JSON path (resolved with {!Json.path})
    and a direction: [Lower_better] fails when the current value exceeds
    [baseline * (1 + rel_tol) + abs_tol]-style slack, [Higher_better]
    when it falls below it, [Exact] when it strays beyond the slack in
    either direction.  Missing-from-current is a failure (the bench
    silently lost a metric); missing-from-baseline passes with a
    re-baseline nudge (a new metric cannot regress).

    {!default_checks} gates only metrics that are deterministic given
    the bench seeds and the virtual clock — never wall-clock rates,
    which vary by machine. *)

type direction = Higher_better | Lower_better | Exact

type check = {
  key : string;  (** dotted path into the bench JSON, e.g. ["delivery.ratio"] *)
  direction : direction;
  rel_tol : float;  (** fraction of |baseline| allowed as drift *)
  abs_tol : float;  (** absolute drift allowed on top *)
}

val check :
  ?rel_tol:float -> ?abs_tol:float -> direction:direction -> string -> check
(** Tolerances default to 0 (exact match required).
    @raise Invalid_argument on negative tolerances. *)

type result = {
  check : check;
  baseline : float option;
  current : float option;
  ok : bool;
  note : string;  (** human-readable verdict, e.g. ["REGRESSION: ..."] *)
}

val compare_json : baseline:Json.t -> current:Json.t -> check list -> result list

val mode_mismatch : baseline:Json.t -> current:Json.t -> (string * string) option
(** The two files' top-level ["mode"] fields when they differ — comparing
    a smoke run against a full baseline is meaningless and should fail
    before any per-metric check. *)

val passed : result list -> bool

val render : ?out:out_channel -> result list -> unit
(** One line per check: ok/FAIL, key, both values, note; then a summary
    line. *)

val default_checks : check list
(** Deterministic metrics only: delivery ratio, routing-hop percentiles,
    orphan count, span-latency percentiles, health verdict counts. *)
