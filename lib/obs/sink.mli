(** Render registry snapshots and trace sets.

    One writer per output shape; callers pick the sink, producers return
    data.  The JSON forms build on {!Json} — no external
    dependencies. *)

(** {1 Metrics} *)

val aligned_table : ?out:out_channel -> string list list -> unit
(** Column-aligned rendering of arbitrary rows (first row is usually a
    header) — the primitive behind {!metrics_table} and friends, exposed
    for dashboards like [i3cluster top]. *)

val metrics_table : ?out:out_channel -> Metrics.sample list -> unit
(** Aligned [name labels value] table (labels rendered [k=v,k=v]). *)

val metrics_csv : ?out:out_channel -> Metrics.sample list -> unit
(** Header [name,labels,kind,value,count,sum,p50,p90,p99,max]; scalar
    metrics leave histogram columns empty and vice versa. *)

val sample_to_json : Metrics.sample -> Json.t

val metrics_json_lines :
  ?append:bool -> path:string -> Metrics.sample list -> unit
(** One JSON object per line per sample.  [append] (default false) adds
    a new snapshot generation to an existing file; writers should
    precede each generation with a marker line (see [bin/i3d]'s periodic
    flush) so readers can pick the freshest one. *)

(** {1 Traces} *)

val event_to_json : Trace.event -> Json.t
val summary_to_json : Trace.summary -> Json.t

val tree_to_json : Trace.tree -> Json.t
(** An assembled cross-process hop tree ({!Trace.assemble}):
    [{trace; sites; terminal; events}]. *)

val trace_table : ?out:out_channel -> Trace.event list -> unit
(** Aligned [trace time site event] listing. *)

val trace_json_lines : path:string -> Trace.event list -> unit

val trace_summaries_csv : ?out:out_channel -> Trace.summary list -> unit
(** Header
    [trace,sends,hops,relays,delivers,drops,drop_causes,first_ms,last_ms];
    drop causes are comma-joined inside one RFC-4180-quoted cell. *)

(** {1 Spans} *)

val span_to_json : Span.span -> Json.t

val span_table : ?out:out_channel -> Span.span list -> unit
(** Aligned [span parent trace op start dur status notes] listing. *)

(** {1 Series and health} *)

val series_to_json : ?tail:int -> Series.t -> Json.t
(** [{name; labels; points: [[at_ms, value]...]}], optionally only the
    last [tail] points. *)

val evaluation_to_json : Health.evaluation -> Json.t

val flight_record :
  at:float ->
  reason:string ->
  ?metrics:Metrics.sample list ->
  ?series:Series.t list ->
  ?series_tail:int ->
  ?spans:Span.span list ->
  ?events:Trace.event list ->
  ?evaluations:Health.evaluation list ->
  unit ->
  Json.t
(** Assemble a flight-recorder dump: what the monitor saw ([evaluations]),
    the registry at the moment of violation ([metrics]), the recent past
    ([series] tails, finished [spans], trace [events]). *)

(** {1 CSV primitives} *)

val csv_cell : string -> string
(** RFC-4180 escaping: cells containing commas, quotes, CR or LF are
    quoted with embedded quotes doubled; anything else passes through. *)

val csv_row : string list -> string
(** Comma-join of {!csv_cell}-escaped cells (no trailing newline). *)

val labels_to_string : (string * string) list -> string
(** ["k=v,k=v"]; [""] when empty. *)
