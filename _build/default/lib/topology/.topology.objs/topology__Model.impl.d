lib/topology/model.ml: Array Dijkstra Fun Graph Plrg Rng Transit_stub
