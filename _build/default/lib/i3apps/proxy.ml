(* Frame layout:
   'Q' | reply private id (32) | request payload      request expecting reply
   'O' | payload                                      one-way datagram
   'R' | request token (8)  | reply payload           reply

   The reply id doubles as correlation: each request gets a token so
   multiple outstanding requests over the same reply trigger demux. *)

type t = {
  host : I3.Host.t;
  rng : Rng.t;
  reply_id : Id.t;
  mutable next_token : int64;
  pending : (int64, string -> unit) Hashtbl.t;
  services : (string, string -> string option) Hashtbl.t;
      (* public id (raw) -> handler *)
}

let public_id ~name = Id.name_hash name

let u64_to_string v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * (7 - i))) land 0xff))

let u64_of_string s =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code s.[i]))
  done;
  !acc

let dispatch t ~stack:_ ~payload =
  if String.length payload >= 1 then
    match payload.[0] with
    | 'Q' when String.length payload >= 1 + Id.byte_length + 8 ->
        let reply_to = Id.of_raw_string (String.sub payload 1 Id.byte_length) in
        let token = String.sub payload (1 + Id.byte_length) 8 in
        let body =
          String.sub payload
            (1 + Id.byte_length + 8)
            (String.length payload - 1 - Id.byte_length - 8)
        in
        (* Which service? All our exposures share this host; a request
           frame carries no service name, so try them in turn — in practice
           a host exposes one service (one proxy per server box). *)
        Hashtbl.iter
          (fun _ handler ->
            match handler body with
            | Some reply ->
                I3.Host.send t.host reply_to ("R" ^ token ^ reply)
            | None -> ())
          t.services
    | 'O' ->
        let body = String.sub payload 1 (String.length payload - 1) in
        Hashtbl.iter (fun _ handler -> ignore (handler body)) t.services
    | 'R' when String.length payload >= 9 -> (
        let token = u64_of_string (String.sub payload 1 8) in
        let body = String.sub payload 9 (String.length payload - 9) in
        match Hashtbl.find_opt t.pending token with
        | Some cb ->
            Hashtbl.remove t.pending token;
            cb body
        | None -> ())
    | _ -> ()

let create host rng =
  let t =
    {
      host;
      rng;
      reply_id = Id.random rng;
      next_token = 0L;
      pending = Hashtbl.create 8;
      services = Hashtbl.create 4;
    }
  in
  I3.Host.on_receive host (fun ~stack ~payload -> dispatch t ~stack ~payload);
  I3.Host.insert_trigger host t.reply_id;
  t

let expose t ~name ~handler =
  let id = public_id ~name in
  Hashtbl.replace t.services (Id.to_raw_string id) handler;
  I3.Host.insert_trigger t.host id

let request t ~name ~payload ~on_reply =
  t.next_token <- Int64.add t.next_token 1L;
  let token = t.next_token in
  Hashtbl.replace t.pending token on_reply;
  I3.Host.send t.host (public_id ~name)
    ("Q" ^ Id.to_raw_string t.reply_id ^ u64_to_string token ^ payload)

let send_oneway t ~name payload =
  I3.Host.send t.host (public_id ~name) ("O" ^ payload)
