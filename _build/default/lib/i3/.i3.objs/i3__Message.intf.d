lib/i3/message.mli: Format Id Packet Trigger
