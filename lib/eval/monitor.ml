(* A health monitor attached to a running deployment: an Engine-driven
   scraper feeding Obs.Health, with flight-recorder dumps on violation.
   The monitor only ever reads the registry the deployment writes — it
   has no side channel to ground truth, which is exactly what makes its
   detect/recover times honest. *)

type t = {
  engine : Engine.t;
  health : Obs.Health.t;
  period : float;
  spans : Obs.Span.t;
  tracer : Obs.Trace.t;
  max_dumps : int;
  dump_spans_tail : int;
  dump_events_tail : int;
  mutable dumps : (float * Json.t) list; (* newest first *)
  mutable user_hook : Obs.Health.evaluation list -> unit;
  mutable timer : Engine.timer option;
}

let default_window_ms = 2_000.

let delivery_rule ?(window_ms = default_window_ms) ~flow_labels () =
  (* In-flight probes drag the windowed ratio below 1 even on a healthy
     deployment (a packet sent at the window's edge lands after it), so
     the Ok threshold leaves generous headroom. *)
  {
    Obs.Health.rule = "delivery";
    signal =
      Obs.Health.Ratio
        {
          num = "eval.flow.received";
          num_labels = flow_labels;
          den = "eval.flow.sent";
          den_labels = flow_labels;
          window_ms;
        };
    bound = Obs.Health.At_least { ok = 0.8; degraded = 0.45 };
  }

let rpc_timeout_rule ?(window_ms = default_window_ms) ~ring_label () =
  (* A healthy converged ring times out essentially never, so even a low
     rate is suspicious; sustained timeouts mean a dead or unreachable
     member. *)
  {
    Obs.Health.rule = "rpc-timeouts";
    signal =
      Obs.Health.Rate
        {
          metric = "chord.rpc_timeouts";
          labels = [ ("instance", ring_label) ];
          window_ms;
        };
    bound = Obs.Health.At_most { ok = 0.5; degraded = 4. };
  }

let ring_stable_rule ?(window_ms = 8_000.) ~ring_label () =
  {
    Obs.Health.rule = "ring-stable";
    signal =
      Obs.Health.Latest
        { metric = "chord.ring_changes"; labels = [ ("instance", ring_label) ] };
    bound = Obs.Health.Stable_within { eps = 0.; window_ms };
  }

let lookup_p99_rule ?(ok = 200.) ?(degraded = 2_000.) ~ring_label () =
  (* The lookup histogram is cumulative, so once p99 crosses a threshold
     it stays there for the rest of the run: a sticky rule, useful as a
     pass/fail SLO over a whole experiment, not for recovery tracking. *)
  {
    Obs.Health.rule = "lookup-p99";
    signal =
      Obs.Health.Latest
        {
          metric = "chord.lookup_ms.p99";
          labels = [ ("instance", ring_label) ];
        };
    bound = Obs.Health.At_most { ok; degraded };
  }

let default_rules ?window_ms ~flow_labels ~ring_label () =
  [
    delivery_rule ?window_ms ~flow_labels ();
    rpc_timeout_rule ?window_ms ~ring_label ();
  ]

let flight_dump t ~at evals =
  let store = Obs.Health.store t.health in
  let tail n l =
    let len = List.length l in
    if len <= n then l else List.filteri (fun i _ -> i >= len - n) l
  in
  let spans =
    if Obs.Span.enabled t.spans then tail t.dump_spans_tail (Obs.Span.spans t.spans)
    else []
  in
  let events =
    if Obs.Trace.enabled t.tracer then
      tail t.dump_events_tail (Obs.Trace.events t.tracer)
    else []
  in
  Obs.Sink.flight_record ~at ~reason:"health verdict entered Violated"
    ~metrics:(Obs.Metrics.snapshot (Obs.Health.registry t.health))
    ~series:(Obs.Series.all store) ~series_tail:32 ~spans ~events
    ~evaluations:evals ()

let create ?(period = 500.) ?phase ?(series_capacity = 1024)
    ?(history_capacity = 4096) ?(max_dumps = 4) ?(dump_spans_tail = 64)
    ?(dump_events_tail = 256) ~rules d =
  let engine = I3.Dynamic.engine d in
  let health =
    Obs.Health.create ~series_capacity ~history_capacity ~rules
      (I3.Dynamic.metrics d)
  in
  let t =
    {
      engine;
      health;
      period;
      spans = I3.Dynamic.spans d;
      tracer = I3.Dynamic.tracer d;
      max_dumps;
      dump_spans_tail;
      dump_events_tail;
      dumps = [];
      user_hook = ignore;
      timer = None;
    }
  in
  Obs.Health.on_violation health (fun evals ->
      let at = Engine.now engine in
      if List.length t.dumps < t.max_dumps then
        t.dumps <- (at, flight_dump t ~at evals) :: t.dumps;
      t.user_hook evals);
  t.timer <-
    Some
      (Engine.scraper engine ?phase ~period (fun ~time ->
           ignore (Obs.Health.scrape health ~time)));
  t

let health t = t.health
let period t = t.period
let scrape_now t = Obs.Health.scrape t.health ~time:(Engine.now t.engine)

let stop t =
  match t.timer with
  | Some timer ->
      Engine.cancel timer;
      t.timer <- None
  | None -> ()

let on_violation t hook = t.user_hook <- hook
let dumps t = List.rev t.dumps

let time_to_detect t ~fault_at =
  Obs.Health.first_breach_after t.health fault_at
  |> Option.map (fun at -> at -. fault_at)

let time_to_recover t ~fault_at =
  Option.bind (Obs.Health.first_breach_after t.health fault_at) (fun breach ->
      Obs.Health.first_ok_after t.health breach
      |> Option.map (fun at -> at -. fault_at))

(* --- live rendering --- *)

let live_header t =
  "t (ms)" :: "overall"
  :: List.map
       (fun (r : Obs.Health.rule) -> r.Obs.Health.rule)
       (Obs.Health.rules t.health)

let live_row t =
  let evals = Obs.Health.last t.health in
  let cell (rule : Obs.Health.rule) =
    match
      List.find_opt
        (fun (e : Obs.Health.evaluation) -> e.Obs.Health.rule = rule.Obs.Health.rule)
        evals
    with
    | None -> "-"
    | Some e ->
        let v =
          match e.Obs.Health.value with
          | Some v -> Printf.sprintf "%.3g" v
          | None -> "-"
        in
        Printf.sprintf "%s %s" v
          (Obs.Health.verdict_to_string e.Obs.Health.verdict)
  in
  Printf.sprintf "%.0f" (Engine.now t.engine)
  :: Obs.Health.verdict_to_string (Obs.Health.overall evals)
  :: List.map cell (Obs.Health.rules t.health)
