(** Minimal hand-rolled JSON tree, emitter and parser — no external
    dependencies.

    Only what the observability layer needs: build a value, render it
    compactly (RFC 8259-valid output), write it to a file — and read one
    back, so the bench regression gate can diff a fresh [BENCH_i3.json]
    against the checked-in baseline. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
      (** non-finite floats are emitted as [null] (JSON has no NaN/inf) *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-escape the contents (no surrounding quotes): backslash,
    quote and control characters; everything else is passed through, so
    UTF-8 survives byte-for-byte. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val to_file : path:string -> t -> unit
(** Write the compact rendering plus a trailing newline. *)

val lines_to_file : ?append:bool -> path:string -> t list -> unit
(** JSON-lines: one compact value per line.  [append] (default false)
    adds to an existing file instead of truncating — periodic telemetry
    flushes grow one file of snapshot generations. *)

(** {1 Parsing} *)

exception Parse_error of string

val of_string : string -> t
(** Parse one JSON value (surrounding whitespace allowed).  Numbers
    without ['.'] or an exponent become [Int] (falling back to [Float]
    beyond [int] range); [\u] escapes decode to UTF-8, surrogate pairs
    combined.  @raise Parse_error on malformed or trailing input. *)

val of_string_opt : string -> t option

val of_file : path:string -> t
(** @raise Parse_error on malformed content, [Sys_error] on I/O. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val path : t -> string -> t option
(** [path v "a.b.c"] descends nested objects by dotted key. *)

val to_float_opt : t -> float option
(** [Int] and [Float] as a float; [None] otherwise. *)
