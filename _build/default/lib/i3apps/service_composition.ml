type service = {
  host : I3.Host.t;
  id : Id.t;
  mutable processed : int;
}

let attach host ~service_id ~transform =
  let s = { host; id = service_id; processed = 0 } in
  I3.Host.insert_trigger host service_id;
  I3.Host.on_receive host (fun ~stack ~payload ->
      s.processed <- s.processed + 1;
      (* An application receiving (stack, data) is expected to process the
         data and send it on with the same remaining stack (Sec. II-E). *)
      match stack with
      | [] -> ()
      | _ -> I3.Host.send_stack host stack (transform payload));
  s

let service_id s = s.id
let processed_count s = s.processed

let send_via host ~services ~flow payload =
  let stack = List.map (fun id -> I3.Packet.Sid id) services @ [ I3.Packet.Sid flow ] in
  if List.length stack > I3.Packet.max_stack_depth then
    invalid_arg "Service_composition.send_via: too many services";
  I3.Host.send_stack host stack payload
