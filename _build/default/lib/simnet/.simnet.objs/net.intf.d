lib/simnet/net.mli: Engine Format Rng
