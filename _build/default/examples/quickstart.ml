(* Quickstart: the rendezvous abstraction in a dozen lines.

   A receiver expresses interest by inserting a trigger (id, addr); a
   sender transmits (id, data) without knowing who — or how many — will
   receive it. Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A simulated deployment: 32 i3 servers on a Chord ring, 5 ms links. *)
  let d = I3.Deployment.create ~seed:42 ~n_servers:32 () in

  (* Two end-hosts. Each knows a few i3 servers; nothing else. *)
  let alice = I3.Deployment.new_host d () in
  let bob = I3.Deployment.new_host d () in

  (* Bob picks a private identifier and registers interest. *)
  let id = I3.Host.new_private_id bob in
  I3.Host.on_receive bob (fun ~stack:_ ~payload ->
      Printf.printf "bob received: %S\n" payload);
  I3.Host.insert_trigger bob id;
  I3.Deployment.run_for d 1_000.;

  (* Alice sends to the identifier — she never learns Bob's address. *)
  I3.Host.send alice id "hello through the indirection layer";
  I3.Deployment.run_for d 1_000.;

  (* The responsible server's address is now cached at Alice, so further
     packets take a single overlay hop. *)
  (match I3.Host.cached_server_for alice id with
  | Some server -> Printf.printf "alice cached i3 server @%d for the flow\n" server
  | None -> print_endline "no cache entry (unexpected)");
  I3.Host.send alice id "second packet, sent directly";
  I3.Deployment.run_for d 1_000.;

  (* Multicast needs no new machinery: a second trigger on the same id. *)
  let carol = I3.Deployment.new_host d () in
  I3.Host.on_receive carol (fun ~stack:_ ~payload ->
      Printf.printf "carol received: %S\n" payload);
  I3.Host.insert_trigger carol id;
  I3.Deployment.run_for d 1_000.;
  I3.Host.send alice id "now it is multicast";
  I3.Deployment.run_for d 1_000.;

  Printf.printf "triggers stored in the infrastructure: %d\n"
    (I3.Deployment.total_triggers d)
